(* The mediator query optimizer (paper §2.2): enumerates access plans —
   join orders (bushy, via dynamic programming over connected subsets) and
   operator placement (wrapper-side subtrees under [submit] vs mediator-side
   composition) — and selects the plan with the lowest estimated TotalTime
   under the blended cost model.

   [enumerate] exhaustively generates complete plans (used by the validation
   benches, in particular the branch-and-bound ablation of §4.3.2);
   [optimize] is the DP used during normal query processing. It has three
   engines behind one interface (see DESIGN.md §15):

   - [Dp]: the original subset-size DP — every alias subset of every size,
     every 2^(k-1) split of each subset. Exponential in federation width.
   - [Dpccp]: connected-subgraph / connected-complement enumeration over the
     join graph (Moerkotte & Neumann's DPccp). It generates exactly the
     (left, right) pairs whose sides are both connected and joined by at
     least one predicate — the only splits the subset DP ever costs — so the
     chosen plan, its cost, the DP entries and [plans_considered] are
     bit-identical to [Dp]; only the enumeration work collapses.
   - [Greedy]: GOO-style cheapest-connected-pair merging followed by bounded
     iterative improvement (subtree re-optimization with DPccp on windows of
     at most the leaf threshold). Polynomial; used above the threshold where
     exact enumeration is hopeless.

   [Auto] (the default) runs [Dpccp] up to [enum_threshold] relations and
   [Greedy] beyond it. *)

open Disco_common
open Disco_algebra
open Disco_core

(* One base relation of the query, with the selection pushed onto it and the
   attributes the rest of the query needs from it. The capability flags come
   from the wrapper's registration (paper §2.1): when a source cannot execute
   an operator, the mediator compensates on its side. *)
type base = {
  ref_ : Plan.collection_ref;
  pred : Pred.t;                  (* local selection; True if none *)
  project : string list option;   (* None: keep all attributes *)
  can_select : bool;
  can_project : bool;
}

type spec = {
  bases : base list;
  (* join predicates, each connecting two aliases *)
  joins : (string * string * Pred.t) list;
  (* whether a source can execute joins (capability, paper §2.1) *)
  can_join : string -> bool;
}

module Aliases = Set.Make (String)

(* Plan for one base relation, as executed inside its wrapper — only the
   operators the wrapper is capable of. *)
let base_plan (b : base) : Plan.t =
  let scan = Plan.Scan b.ref_ in
  let selected =
    if b.can_select && not (Pred.equal b.pred Pred.True) then
      Plan.Select (scan, b.pred)
    else scan
  in
  match b.project with
  | Some attrs when b.can_project -> Plan.Project (selected, attrs)
  | _ -> selected

(* The part of the base selection the wrapper cannot execute: applied by the
   mediator, above the submit. *)
let base_residual (b : base) : Pred.t = if b.can_select then Pred.True else b.pred

(* A single base relation as a complete mediator-side plan: submit the
   wrapper-capable part, apply the residual above. *)
let submit_base (b : base) : Plan.t =
  let p = Plan.Submit (b.ref_.Plan.source, base_plan b) in
  let residual = base_residual b in
  if Pred.equal residual Pred.True then p else Plan.Select (p, residual)

(* Per-alias index of the join predicates touching each alias, built once
   per enumeration/optimization. [connecting] visits only the joins adjacent
   to the smaller side of a split instead of scanning the full [spec.joins]
   list for every split of every subset. Entries carry their position in
   [spec.joins] so the connecting conjunction keeps declaration order,
   exactly as the direct scan produced it. *)
type adjacency = (string, (int * string * string * Pred.t) list) Hashtbl.t

let adjacency_of (spec : spec) : adjacency =
  let adj : adjacency = Hashtbl.create 16 in
  let add alias e =
    Hashtbl.replace adj alias
      (e :: Option.value ~default:[] (Hashtbl.find_opt adj alias))
  in
  List.iteri
    (fun i (a, b, p) ->
      let e = (i, a, b, p) in
      add a e;
      add b e)
    spec.joins;
  adj

(* Join predicates crossing between the disjoint alias sets [s1] and [s2],
   in [spec.joins] order. Each crossing join is adjacent to exactly one
   alias of the side we iterate (its endpoints lie in different sets), so no
   deduplication is needed. *)
let connecting (adj : adjacency) s1 s2 =
  let smaller, other =
    if Aliases.cardinal s1 <= Aliases.cardinal s2 then (s1, s2) else (s2, s1)
  in
  let hits = ref [] in
  Aliases.iter
    (fun alias ->
      List.iter
        (fun (i, a, b, p) ->
          let o = if String.equal a alias then b else a in
          if Aliases.mem o other then hits := (i, p) :: !hits)
        (Option.value ~default:[] (Hashtbl.find_opt adj alias)))
    smaller;
  List.map snd
    (List.sort (fun (i, _) (j, _) -> Int.compare i j) !hits)

(* Connected components of the join graph restricted to [aliases], in
   first-appearance order (each component BFS-discovered from its first
   alias). Used for the up-front disconnected-graph diagnostics. *)
let join_components (adj : adjacency) (aliases : string list) : string list list =
  let member = Hashtbl.create 16 in
  List.iter (fun a -> Hashtbl.replace member a ()) aliases;
  let seen = Hashtbl.create 16 in
  List.filter_map
    (fun a ->
      if Hashtbl.mem seen a then None
      else begin
        let comp = ref [] in
        let q = Queue.create () in
        Queue.push a q;
        Hashtbl.replace seen a ();
        while not (Queue.is_empty q) do
          let x = Queue.pop q in
          comp := x :: !comp;
          List.iter
            (fun (_, u, v, _) ->
              let o = if String.equal u x then v else u in
              if Hashtbl.mem member o && not (Hashtbl.mem seen o) then begin
                Hashtbl.replace seen o ();
                Queue.push o q
              end)
            (Option.value ~default:[] (Hashtbl.find_opt adj x))
        done;
        Some (List.rev !comp)
      end)
    aliases

(* A candidate subplan during enumeration: either still inside one wrapper
   (unwrapped), or already a mediator-side plan whose leaves are submits. *)
type site = At_source of string | At_mediator

type candidate = {
  plan : Plan.t;
  site : site;
  aliases : Aliases.t;
  (* selection a capability-limited wrapper could not execute; applied by the
     mediator right above the submit *)
  residual : Pred.t;
}

let wrap (c : candidate) : candidate =
  match c.site with
  | At_mediator -> c
  | At_source s ->
    let p = Plan.Submit (s, c.plan) in
    let p =
      if Pred.equal c.residual Pred.True then p else Plan.Select (p, c.residual)
    in
    { plan = p; site = At_mediator; aliases = c.aliases; residual = Pred.True }

(* Combine two disjoint candidates with a join, in both orientations (join
   costs are asymmetric: the inner input may be probed via an index).
   Wrapper-side joins are only possible when both sides live in the same
   source. *)
let combine spec (adj : adjacency) (l : candidate) (r : candidate) :
    candidate list =
  let preds = connecting adj l.aliases r.aliases in
  if preds = [] then []
  else
    let pred = Pred.conj preds in
    let aliases = Aliases.union l.aliases r.aliases in
    let mediator_side =
      let l' = wrap l and r' = wrap r in
      [ { plan = Plan.Join (l'.plan, r'.plan, pred);
          site = At_mediator;
          aliases;
          residual = Pred.True };
        { plan = Plan.Join (r'.plan, l'.plan, pred);
          site = At_mediator;
          aliases;
          residual = Pred.True } ]
    in
    match l.site, r.site with
    | At_source s1, At_source s2 when String.equal s1 s2 && spec.can_join s1 ->
      let residual = Pred.conj (Pred.conjuncts l.residual @ Pred.conjuncts r.residual) in
      { plan = Plan.Join (l.plan, r.plan, pred); site = At_source s1; aliases; residual }
      :: { plan = Plan.Join (r.plan, l.plan, pred); site = At_source s1; aliases; residual }
      :: mediator_side
    | _ -> mediator_side

(* --- Width limits ------------------------------------------------------------ *)

(* [splits] materializes 2^(n-1) masks: [1 lsl n] is undefined at the word
   size and the list is hopeless long before that. The subset DP therefore
   supports at most [max_split_width] relations; wider federations must use
   the dpccp / greedy engines. *)
let max_split_width = 20

(* [enumerate] is super-exponential (every bushy shape of every split). *)
let max_enumerate_width = 10

(* DPccp represents alias subsets as bits of one OCaml int (63-bit). *)
let max_graph_width = 61

(* All non-empty proper splits of a list (first element pinned to the left
   side, avoiding mirror duplicates). *)
let splits = function
  | [] | [ _ ] -> []
  | first :: rest ->
    let n = List.length rest in
    if n + 1 > max_split_width then
      raise
        (Err.Plan_error
           (Fmt.str
              "cannot split a %d-relation subset: the subset DP materializes \
               2^(n-1) splits and supports at most %d relations — use the \
               dpccp or greedy join enumerator"
              (n + 1) max_split_width));
    let all = ref [] in
    for mask = 0 to (1 lsl n) - 1 do
      let left = ref [ first ] and right = ref [] in
      List.iteri
        (fun i x -> if mask land (1 lsl i) <> 0 then left := x :: !left else right := x :: !right)
        rest;
      if !right <> [] then all := (List.rev !left, List.rev !right) :: !all
    done;
    !all

(* --- Exhaustive enumeration ------------------------------------------------- *)

(* All complete mediator-side plans joining every base (small N only). *)
let enumerate (spec : spec) : Plan.t list =
  if List.length spec.bases > max_enumerate_width then
    raise
      (Err.Plan_error
         (Fmt.str
            "cannot enumerate %d relations exhaustively: plan count is \
             super-exponential; the limit is %d relations — use optimize"
            (List.length spec.bases) max_enumerate_width));
  let adj = adjacency_of spec in
  let rec gen (bs : base list) : candidate list =
    match bs with
    | [] -> []
    | [ b ] ->
      [ { plan = base_plan b;
          site = At_source b.ref_.Plan.source;
          aliases = Aliases.singleton b.ref_.Plan.binding;
          residual = base_residual b } ]
    | _ ->
      List.concat_map
        (fun (lbs, rbs) ->
          List.concat_map
            (fun l -> List.concat_map (fun r -> combine spec adj l r) (gen rbs))
            (gen lbs))
        (splits bs)
  in
  match spec.bases with
  | [] -> []
  | [ b ] -> [ submit_base b ]
  | bs ->
    let complete = gen bs in
    List.filter_map
      (fun c ->
        if Aliases.cardinal c.aliases = List.length bs then Some (wrap c).plan
        else None)
      complete

(* --- Cost-based selection ---------------------------------------------------- *)

type stats = {
  mutable plans_considered : int;
  mutable plans_aborted : int;
  mutable formula_evals : int;
  mutable csg_cmp_pairs : int;
  mutable dp_entries : int;
}

let new_stats () =
  { plans_considered = 0;
    plans_aborted = 0;
    formula_evals = 0;
    csg_cmp_pairs = 0;
    dp_entries = 0 }

(* Counters are never shared across domains: each parallel slot fills its
   own [stats] (a [cost_of] call mutates exactly the record it was handed)
   and the partials are merged once, at the fork/join barrier, in slot
   order. One merge per partial — never double- or under-counted; the
   regression test in test/test_parallel.ml pins exact values. *)
let merge_stats ~into (s : stats) =
  into.plans_considered <- into.plans_considered + s.plans_considered;
  into.plans_aborted <- into.plans_aborted + s.plans_aborted;
  into.formula_evals <- into.formula_evals + s.formula_evals;
  into.csg_cmp_pairs <- into.csg_cmp_pairs + s.csg_cmp_pairs;
  into.dp_entries <- into.dp_entries + s.dp_entries

(* What the optimizer minimizes: the time to the complete answer, or the
   time to the first object (the paper's TimeFirst — interactive clients).
   Pipelined strategies (index joins) tend to win the latter; blocking ones
   (mediator hash joins, sorts) the former. *)
type objective = Total_time | First_tuple

let objective_var = function
  | Total_time -> Disco_costlang.Ast.Total_time
  | First_tuple -> Disco_costlang.Ast.Time_first

(* Estimate a complete plan; [bound] enables the early-abort heuristic of
   §4.3.2 (TotalTime objective only — TimeFirst is not monotone along the
   tree). Returns [None] when aborted.

   [memo] shares subtree annotations with earlier estimates of the same
   optimizer run; [cache] consults (and feeds) the cross-query plan cache. A
   cache hit can return a cost above [bound] where the uncached path would
   have aborted — callers compare against the best so far either way, so the
   selected plan is identical; only the abort counter differs. Aborted
   estimates are never cached. *)
let cost_of ?bound ?(objective = Total_time) ?memo ?cache ?shard registry
    (stats : stats) (plan : Plan.t) : float option =
  stats.plans_considered <- stats.plans_considered + 1;
  let var = objective_var objective in
  let cached =
    match cache with
    | Some c -> Plancache.find c registry ~objective:var plan
    | None -> None
  in
  match cached with
  | Some cost -> Some cost
  | None ->
    let evals = ref 0 in
    let bound = match objective with Total_time -> bound | First_tuple -> None in
    let result =
      try
        let ann =
          Estimator.estimate ?abort_above:bound ~evals ?memo ?shard
            ~require_vars:[ var ] registry plan
        in
        Some (Option.get (Estimator.var ann var))
      with Estimator.Aborted ->
        stats.plans_aborted <- stats.plans_aborted + 1;
        None
    in
    stats.formula_evals <- stats.formula_evals + !evals;
    (match result, cache with
     | Some cost, Some c -> Plancache.add c registry ~objective:var plan cost
     | _ -> ());
    result

module Pool = Disco_parallel.Pool

(* Pick the cheapest plan from an explicit list, optionally with
   branch-and-bound pruning. With [domains > 1] the list is split into
   contiguous chunks costed concurrently — each slot with its own memo,
   stats and prune bound, shard-isolated in the VM — and the chunk winners
   are reduced in chunk order under the same [c <= cost] keep-the-earlier
   tie-break the sequential fold applies, so the chosen plan and cost are
   bit-identical at any domain count. (With pruning on, [plans_aborted] may
   differ across domain counts: chunk-local bounds abort differently. The
   winner cannot change — an aborted plan's cost exceeds its chunk bound,
   which some already-kept plan achieved.) *)
let choose ?(prune = true) ?(objective = Total_time) ?memo ?cache
    ?(domains = 1) registry ?stats (plans : Plan.t list) :
    (Plan.t * float) option =
  let caller_stats = stats in
  let best_of ?memo ~shard stats plans =
    List.fold_left
      (fun best plan ->
        let bound = if prune then Option.map snd best else None in
        match
          cost_of ?bound ~objective ?memo ?cache ~shard registry stats plan
        with
        | None -> best
        | Some cost ->
          (match best with
           | Some (_, c) when c <= cost -> best
           | _ -> Some (plan, cost)))
      None plans
  in
  let pool = Pool.create domains in
  let finish stats result =
    (match caller_stats with
     | Some into when into != stats -> merge_stats ~into stats
     | _ -> ());
    result
  in
  if Pool.degree pool <= 1 then
    let stats = match caller_stats with Some s -> s | None -> new_stats () in
    best_of ?memo ~shard:0 stats plans
  else begin
    let chunks = Pool.chunk (Pool.degree pool) plans in
    let nchunks = Array.length chunks in
    let memos =
      Array.init nchunks (fun i ->
          if i = 0 then memo
          else Option.map (fun _ -> Estimator.new_memo ()) memo)
    in
    let slot_stats = Array.init nchunks (fun _ -> new_stats ()) in
    let results =
      Pool.run pool
        (fun slot ->
          best_of ?memo:memos.(slot) ~shard:slot slot_stats.(slot)
            chunks.(slot))
        nchunks
    in
    for s = 1 to nchunks - 1 do
      merge_stats ~into:slot_stats.(0) slot_stats.(s)
    done;
    finish slot_stats.(0)
      (Array.fold_left
         (fun best r ->
           match best, r with
           | Some (_, c), Some (_, c') when c <= c' -> best
           | _, Some pc -> Some pc
           | _, None -> best)
         None results)
  end

(* --- Enumeration modes -------------------------------------------------------- *)

type enum_mode = Dp | Dpccp | Greedy | Auto

let default_enum_threshold = 12

let enum_mode_to_string = function
  | Dp -> "dp"
  | Dpccp -> "dpccp"
  | Greedy -> "greedy"
  | Auto -> "auto"

let enum_mode_of_string s =
  match String.lowercase_ascii s with
  | "dp" -> Some Dp
  | "dpccp" -> Some Dpccp
  | "greedy" -> Some Greedy
  | "auto" -> Some Auto
  | _ -> None

(* DISCO_ENUM overrides the default mode for mediators created without an
   explicit one (the CI integration run sets it to dpccp); an unknown value
   falls back to auto rather than failing query processing. *)
let env_enum_mode () =
  match Sys.getenv_opt "DISCO_ENUM" with
  | Some s -> (match enum_mode_of_string s with Some m -> m | None -> Auto)
  | None -> Auto

(* The improvement phase of the greedy engine stops after this many csg–cmp
   pairs: a deterministic work bound (never wall-clock) so dense unit graphs
   — where a single window DP would cost more than the plan is worth — fall
   back to the plain greedy result instead of blowing the latency budget. *)
let improve_pair_budget = 2_000

(* --- Bit-set helpers (DPccp masks over unit indices) -------------------------- *)

let lowest_bit m = m land (-m)

let popcount m =
  let rec go acc m = if m = 0 then acc else go (acc + 1) (m land (m - 1)) in
  go 0 m

let bit_index b =
  let rec go i v = if v = 1 then i else go (i + 1) (v lsr 1) in
  go 0 b

(* Masks compared as their ascending index sequences, lexicographically —
   the order [subsets_of_size] emits alias combinations in. Comparing raw
   mask values is not equivalent: {0,3} = 9 would sort after {1,2} = 6. *)
let rec lex_mask_compare a b =
  if a = b then 0
  else
    let la = lowest_bit a and lb = lowest_bit b in
    if la = lb then lex_mask_compare (a lxor la) (b lxor lb)
    else Int.compare la lb

(* The greedy engine's merge tree, decomposed into DPccp re-optimization
   windows by the improvement phase. *)
type gtree = Gleaf of int | Gnode of gtree * gtree

(* --- Dynamic programming ------------------------------------------------------ *)

module Key = struct
  type t = string list (* sorted aliases *)

  let of_aliases s = List.sort String.compare (Aliases.elements s)
end

(* Diagnose an impossible query precisely instead of a generic "no complete
   plan found": name the unavailable single-sourced relations, and the
   connected components of the join graph when it is disconnected. *)
let no_plan_error (spec : spec) ~available : 'a =
  let adj = adjacency_of spec in
  let unavailable =
    List.filter (fun b -> not (available b.ref_.Plan.source)) spec.bases
  in
  let avail_aliases =
    List.filter_map
      (fun b ->
        if available b.ref_.Plan.source then Some b.ref_.Plan.binding else None)
      spec.bases
  in
  let comps = join_components adj avail_aliases in
  let parts = [] in
  let parts =
    if unavailable = [] then parts
    else
      Fmt.str "relation%s %s unavailable and not replicated"
        (if List.length unavailable > 1 then "s" else "")
        (String.concat ", "
           (List.map
              (fun b ->
                Fmt.str "%s (alias %s, source %s)" b.ref_.Plan.collection
                  b.ref_.Plan.binding b.ref_.Plan.source)
              unavailable))
      :: parts
  in
  let parts =
    if List.length comps <= 1 then parts
    else
      Fmt.str
        "join graph splits into %d disconnected components %s — add join \
         predicates linking them (cross joins are not enumerated)"
        (List.length comps)
        (String.concat " | "
           (List.map (fun c -> "{" ^ String.concat ", " c ^ "}") comps))
      :: parts
  in
  let msg =
    match List.rev parts with
    | [] -> "no complete plan found (join enumeration produced no candidate)"
    | ps -> "no complete plan found: " ^ String.concat "; " ps
  in
  raise (Err.Plan_error msg)

(* DP over alias subsets: for each subset keep the best candidate per site
   (one per source for unwrapped plans, one mediator-side), stored with its
   cost so each candidate is costed exactly once per run — the incumbent's
   stored cost is compared against, never recomputed. [memo] (default on)
   shares subtree annotations across the run — candidates overlap massively,
   so without sharing the estimator re-runs formulas on identical subtrees
   thousands of times. [cache] is the cross-query cache; both only change
   what is recomputed, never the costs, so the chosen plan is identical with
   and without them (see test/test_plancache.ml). *)
(* Parallel structure: within one subset size every subset is independent —
   its splits read only strictly-smaller keys, and all its candidates land
   on its own key — so each size is a fork/join round: subsets are chunked
   contiguously across domains, every slot accumulates its subsets' entry
   lists locally (shard-isolated cost evaluation: own memo, own stats, own
   VM slot-cache shard), and the main domain installs the lists into the
   shared table at the barrier, in enumeration order. Costs are
   value-deterministic whatever slot computes them, so every comparison —
   the per-site [old_cost <= c_cost] keep-the-incumbent rule and the final
   [b <= cst] fold — resolves identically at any domain count, and the
   chosen plan, its cost, the DP table and [plans_considered] are
   bit-identical to the sequential run. Only [formula_evals] is
   configuration-dependent (per-slot memos change what is recomputed, never
   any value), exactly as PR 1's cache caveat.

   The same argument makes [Dpccp] bit-identical to [Dp]: the subset DP only
   ever costs a split whose two sides both have table entries (i.e. are
   connected induced subgraphs — by induction only those get entries) and
   whose [connecting] predicates are non-empty; those are exactly the
   csg–cmp pairs DPccp generates. Within a subset the DPccp splits are
   replayed in the subset DP's order (descending right-to-left mask), so the
   [put_entry] sequence — and with it every incumbent comparison, every
   stored cost, and [plans_considered] — is identical. Only [csg_cmp_pairs]
   (enumeration work) differs: the subset DP examines every split of every
   subset, DPccp touches valid pairs only. *)
let optimize ?(objective = Total_time) ?(memo = true) ?cache
    ?(available = fun _ -> true) ?(domains = 1) ?stats ?(enum = Auto)
    ?(enum_threshold = default_enum_threshold) registry (spec : spec)
    : Plan.t * float =
  if spec.bases = [] then raise (Err.Plan_error "query has no relations");
  let caller_stats = stats in
  let pool = Pool.create domains in
  let p = Pool.degree pool in
  let memos =
    Array.init p (fun _ -> if memo then Some (Estimator.new_memo ()) else None)
  in
  let slot_stats = Array.init p (fun _ -> new_stats ()) in
  let adj = adjacency_of spec in
  (* fail early, with names: a base whose only source is unavailable (open
     circuit) or a join graph in several pieces can never produce a complete
     plan — diagnose both up front instead of discovering an empty table
     after the whole enumeration ran *)
  if List.exists (fun b -> not (available b.ref_.Plan.source)) spec.bases then
    no_plan_error spec ~available;
  let aliases = List.map (fun b -> b.ref_.Plan.binding) spec.bases in
  (match join_components adj aliases with
   | _ :: _ :: _ -> no_plan_error spec ~available
   | _ -> ());
  let cost ~slot plan =
    match
      cost_of ~objective ?memo:memos.(slot) ?cache ~shard:slot registry
        slot_stats.(slot) plan
    with
    | Some c -> c
    | None -> infinity
  in
  (* keep at most one candidate per site; [existing] is threaded, not read
     back from the table, so slots can accumulate without touching it *)
  let put_entry ~slot existing (c : candidate) =
    let same_site ((x : candidate), _) =
      match x.site, c.site with
      | At_mediator, At_mediator -> true
      | At_source a, At_source b -> String.equal a b
      | _ -> false
    in
    match List.find_opt same_site existing with
    | Some ((_, old_cost) as entry) ->
      let c_cost = cost ~slot c.plan in
      if old_cost <= c_cost then existing
      else (c, c_cost) :: List.filter (fun e -> e != entry) existing
    | None -> (c, cost ~slot c.plan) :: existing
  in
  (* the singleton entries of one base: the wrapper-side candidate and its
     wrapped mediator-side form, exactly as the subset DP seeds them *)
  let seed_base ~slot (b : base) =
    let c =
      { plan = base_plan b;
        site = At_source b.ref_.Plan.source;
        aliases = Aliases.singleton b.ref_.Plan.binding;
        residual = base_residual b }
    in
    let entries = put_entry ~slot (put_entry ~slot [] c) (wrap c) in
    slot_stats.(slot).dp_entries <-
      slot_stats.(slot).dp_entries + List.length entries;
    entries
  in
  (* fold the full-query entries down to the cheapest complete plan *)
  let best_of_entries cands =
    match
      List.fold_left
        (fun best (c, stored) ->
          let w = wrap c in
          (* wrapping is the identity on mediator-side candidates, whose
             stored cost is still exact; wrapper-side candidates change
             plan (submit + residual) and are costed once here *)
          let cst = if w == c then stored else cost ~slot:0 w.plan in
          match best with
          | Some (_, b) when b <= cst -> best
          | _ -> Some (w.plan, cst))
        None cands
    with
    | Some result -> result
    | None -> no_plan_error spec ~available
  in
  let n = List.length spec.bases in

  (* --- engine 1: the original subset-size DP --------------------------------- *)
  let run_dp () =
    if n > max_split_width then
      raise
        (Err.Plan_error
           (Fmt.str
              "the dp join enumerator supports at most %d relations (this \
               query has %d) — use dpccp, greedy or auto"
              max_split_width n));
    let table : (Key.t, (candidate * float) list) Hashtbl.t =
      Hashtbl.create 64
    in
    List.iter
      (fun b ->
        Hashtbl.replace table
          (Key.of_aliases (Aliases.singleton b.ref_.Plan.binding))
          (seed_base ~slot:0 b))
      spec.bases;
    (* grow subsets by size *)
    let alias_arr = Array.of_list aliases in
    let subsets_of_size k =
      let out = ref [] in
      let rec go i chosen count =
        if count = k then out := List.rev chosen :: !out
        else if i < n then begin
          go (i + 1) (alias_arr.(i) :: chosen) (count + 1);
          if n - i - 1 >= k - count then go (i + 1) chosen count
        end
      in
      go 0 [] 0;
      !out
    in
    (* one subset's entry list, built against the (read-only) smaller sizes *)
    let process_subset ~slot subset =
      let entries = ref [] in
      List.iter
        (fun (left, right) ->
          let st = slot_stats.(slot) in
          st.csg_cmp_pairs <- st.csg_cmp_pairs + 1;
          let lkey = Key.of_aliases (Aliases.of_list left)
          and rkey = Key.of_aliases (Aliases.of_list right) in
          match Hashtbl.find_opt table lkey, Hashtbl.find_opt table rkey with
          | Some ls, Some rs ->
            List.iter
              (fun (l, _) ->
                List.iter
                  (fun (r, _) ->
                    List.iter
                      (fun c -> entries := put_entry ~slot !entries c)
                      (combine spec adj l r))
                  rs)
              ls
          | _ -> ())
        (splits subset);
      (Key.of_aliases (Aliases.of_list subset), !entries)
    in
    for size = 2 to n do
      let chunks = Pool.chunk p (subsets_of_size size) in
      let results =
        Pool.run pool
          (fun slot -> List.map (process_subset ~slot) chunks.(slot))
          (Array.length chunks)
      in
      (* install at the barrier, in enumeration order; a subset with no
         connecting joins stays absent, as the sequential path leaves it *)
      Array.iter
        (fun keyed ->
          List.iter
            (fun (key, entries) ->
              if entries <> [] then begin
                Hashtbl.replace table key entries;
                slot_stats.(0).dp_entries <-
                  slot_stats.(0).dp_entries + List.length entries
              end)
            keyed)
        results
    done;
    match Hashtbl.find_opt table (Key.of_aliases (Aliases.of_list aliases)) with
    | None | Some [] -> no_plan_error spec ~available
    | Some cands -> best_of_entries cands
  in

  (* --- DPccp over an array of units ------------------------------------------ *)
  (* The csg–cmp engine, generalized to "units": disjoint alias groups with
     their candidate entries. The exact path uses the query's bases as
     units (with the fork/join size rounds of the subset DP); the greedy
     improver re-enters with composite units, sequentially. Returns the
     entry list of the union of all units, or [None] when [pair_limit]
     would be exceeded (checked before any costing). *)
  let dpccp_units ?(parallel = false) ?pair_limit
      (units : (Aliases.t * (candidate * float) list) array) :
      (candidate * float) list option =
    let m = Array.length units in
    if m > max_graph_width then
      raise
        (Err.Plan_error
           (Fmt.str
              "the dpccp join enumerator represents subsets as bits of one \
               int and supports at most %d relations (this query has %d) — \
               use greedy or auto"
              max_graph_width m));
    if m = 0 then Some []
    else if m = 1 then Some (snd units.(0))
    else begin
      (* unit adjacency: a crossing join predicate makes two units adjacent *)
      let nbr = Array.make m 0 in
      for i = 0 to m - 1 do
        for j = i + 1 to m - 1 do
          if connecting adj (fst units.(i)) (fst units.(j)) <> [] then begin
            nbr.(i) <- nbr.(i) lor (1 lsl j);
            nbr.(j) <- nbr.(j) lor (1 lsl i)
          end
        done
      done;
      let nbrs_of mask =
        let rec go acc m =
          if m = 0 then acc
          else
            let b = lowest_bit m in
            go (acc lor nbr.(bit_index b)) (m lxor b)
        in
        go 0 mask land lnot mask
      in
      let connected mask =
        mask <> 0
        &&
        let rec grow s =
          let s' = s lor (nbrs_of s land mask) in
          if s' = s then s else grow s'
        in
        grow (lowest_bit mask) = mask
      in
      let iter_subsets mask f =
        let s = ref mask in
        while !s <> 0 do
          f !s;
          s := (!s - 1) land mask
        done
      in
      (* EnumerateCsg: every connected induced subgraph, each exactly once *)
      let csgs = ref [] in
      let rec expand s x =
        let n_s = nbrs_of s land lnot x in
        if n_s <> 0 then begin
          iter_subsets n_s (fun s' -> csgs := (s lor s') :: !csgs);
          iter_subsets n_s (fun s' -> expand (s lor s') (x lor n_s))
        end
      in
      for i = m - 1 downto 0 do
        let s = 1 lsl i in
        csgs := s :: !csgs;
        expand s ((1 lsl (i + 1)) - 1)
      done;
      (* the valid splits of a connected subset: connected left sides
         containing its lowest unit (the element the subset DP pins left),
         with connected complements — emitted in the subset DP's split
         order (descending mask; compaction onto the rest-list is monotone,
         so raw mask order coincides) *)
      let splits_of s_mask =
        let e0 = lowest_bit s_mask in
        let acc = ref [] in
        let consider l =
          if l <> s_mask && connected (s_mask lxor l) then acc := l :: !acc
        in
        consider e0;
        let rec expand_l s x =
          let n_s = nbrs_of s land s_mask land lnot x in
          if n_s <> 0 then begin
            iter_subsets n_s (fun s' -> consider (s lor s'));
            iter_subsets n_s (fun s' -> expand_l (s lor s') (x lor n_s))
          end
        in
        expand_l e0 e0;
        List.sort (fun a b -> Int.compare b a) !acc
      in
      (* split enumeration is lazy against [pair_limit]: a denial costs at
         most [limit] split enumerations, not the graph's full csg–cmp
         count (3^m on a clique window) *)
      let exception Over_limit in
      let with_splits_opt =
        let total = ref 0 in
        let splits_counted s =
          let l = splits_of s in
          (match pair_limit with
           | Some limit ->
             total := !total + List.length l;
             if !total > limit then raise Over_limit
           | None -> ());
          l
        in
        match
          List.filter_map
            (fun s ->
              if popcount s >= 2 then Some (s, splits_counted s) else None)
            !csgs
        with
        | with_splits -> Some with_splits
        | exception Over_limit -> None
      in
      match with_splits_opt with
      | None -> None
      | Some with_splits ->
        let by_size = Array.make (m + 1) [] in
        List.iter
          (fun ((s, _) as g) ->
            let k = popcount s in
            by_size.(k) <- g :: by_size.(k))
          with_splits;
        Array.iteri
          (fun k g ->
            by_size.(k) <-
              List.sort (fun (a, _) (b, _) -> lex_mask_compare a b) g)
          by_size;
        let table : (int, (candidate * float) list) Hashtbl.t =
          Hashtbl.create 64
        in
        Array.iteri
          (fun i (_, entries) -> Hashtbl.replace table (1 lsl i) entries)
          units;
        let process ~slot (s_mask, lmasks) =
          let entries = ref [] in
          List.iter
            (fun lmask ->
              let st = slot_stats.(slot) in
              st.csg_cmp_pairs <- st.csg_cmp_pairs + 1;
              match
                Hashtbl.find_opt table lmask,
                Hashtbl.find_opt table (s_mask lxor lmask)
              with
              | Some ls, Some rs ->
                List.iter
                  (fun (l, _) ->
                    List.iter
                      (fun (r, _) ->
                        List.iter
                          (fun c -> entries := put_entry ~slot !entries c)
                          (combine spec adj l r))
                      rs)
                  ls
              | _ -> ())
            lmasks;
          (s_mask, !entries)
        in
        let install (mask, entries) =
          if entries <> [] then begin
            Hashtbl.replace table mask entries;
            slot_stats.(0).dp_entries <-
              slot_stats.(0).dp_entries + List.length entries
          end
        in
        for size = 2 to m do
          let group = by_size.(size) in
          if group <> [] then
            if parallel && p > 1 then begin
              let chunks = Pool.chunk p group in
              let results =
                Pool.run pool
                  (fun slot -> List.map (process ~slot) chunks.(slot))
                  (Array.length chunks)
              in
              Array.iter (List.iter install) results
            end
            else List.iter (fun g -> install (process ~slot:0 g)) group
        done;
        Some
          (Option.value ~default:[]
             (Hashtbl.find_opt table ((1 lsl m) - 1)))
    end
  in

  (* --- engine 2: DPccp over the bases ---------------------------------------- *)
  let run_dpccp () =
    let units =
      Array.of_list
        (List.map
           (fun b ->
             (Aliases.singleton b.ref_.Plan.binding, seed_base ~slot:0 b))
           spec.bases)
    in
    match dpccp_units ~parallel:true units with
    | Some (_ :: _ as cands) -> best_of_entries cands
    | Some [] | None -> no_plan_error spec ~available
  in

  (* --- engine 3: greedy (GOO) + bounded DPccp-window improvement ------------- *)
  let run_greedy () =
    let slot = 0 in
    let base_arr = Array.of_list spec.bases in
    let seeds = Array.map (fun b -> seed_base ~slot b) base_arr in
    (* mutable unit state; index i starts as base i and absorbs its merge
       partners *)
    let al_u = Array.map (fun b -> Aliases.singleton b.ref_.Plan.binding) base_arr in
    let entries_u = Array.copy seeds in
    let tree_u = Array.init n (fun i -> Gleaf i) in
    let active = Array.make n true in
    let uadj = Array.make_matrix n n false in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        if connecting adj al_u.(i) al_u.(j) <> [] then begin
          uadj.(i).(j) <- true;
          uadj.(j).(i) <- true
        end
      done
    done;
    let merge_entries l r =
      let entries = ref [] in
      List.iter
        (fun (lc, _) ->
          List.iter
            (fun (rc, _) ->
              List.iter
                (fun c -> entries := put_entry ~slot !entries c)
                (combine spec adj lc rc))
            r)
        l;
      !entries
    in
    (* a pair's rank: the cost of joining the two sides' cheapest entries
       (strict [<] keeps the earlier entry on ties, so the pick is
       deterministic). Ranking only the cheapest-by-cheapest combination —
       both sides are already costed and memoized, so a rank costs a couple
       of top-node estimations — keeps the GOO loop quadratic-with-small-
       constant even on cliques; the full entry product is materialized
       only for the winning pair of each round. *)
    let cheapest entries =
      match entries with
      | [] -> None
      | e0 :: tl ->
        Some
          (List.fold_left
             (fun ((_, r) as best) ((_, r') as e) -> if r' < r then e else best)
             e0 tl)
    in
    let rank_cache : (int * int, float) Hashtbl.t = Hashtbl.create 64 in
    let eval_pair i j =
      match Hashtbl.find_opt rank_cache (i, j) with
      | Some r -> r
      | None ->
        slot_stats.(slot).csg_cmp_pairs <-
          slot_stats.(slot).csg_cmp_pairs + 1;
        let rank =
          match cheapest entries_u.(i), cheapest entries_u.(j) with
          | Some (lc, _), Some (rc, _) ->
            List.fold_left
              (fun m c -> Float.min m (cost ~slot c.plan))
              infinity
              (combine spec adj lc rc)
          | _ -> infinity
        in
        Hashtbl.replace rank_cache (i, j) rank;
        rank
    in
    (* GOO: repeatedly merge the cheapest connected pair; ties keep the
       first pair in ascending (i, j) order, so the result is deterministic *)
    let remaining = ref n in
    while !remaining > 1 do
      let best = ref None in
      for i = 0 to n - 1 do
        if active.(i) then
          for j = i + 1 to n - 1 do
            if active.(j) && uadj.(i).(j) then begin
              let rank = eval_pair i j in
              match !best with
              | Some (_, _, br) when br <= rank -> ()
              | _ -> best := Some (i, j, rank)
            end
          done
      done;
      match !best with
      | None ->
        (* unreachable: the up-front component check guarantees the unit
           graph stays connected under merging *)
        no_plan_error spec ~available
      | Some (i, j, _) ->
        let entries = merge_entries entries_u.(i) entries_u.(j) in
        al_u.(i) <- Aliases.union al_u.(i) al_u.(j);
        entries_u.(i) <- entries;
        tree_u.(i) <- Gnode (tree_u.(i), tree_u.(j));
        active.(j) <- false;
        slot_stats.(slot).dp_entries <-
          slot_stats.(slot).dp_entries + List.length entries;
        for k = 0 to n - 1 do
          if k <> i && k <> j then begin
            uadj.(i).(k) <- uadj.(i).(k) || uadj.(j).(k);
            uadj.(k).(i) <- uadj.(i).(k);
            Hashtbl.remove rank_cache (min i k, max i k);
            Hashtbl.remove rank_cache (min j k, max j k)
          end;
          uadj.(j).(k) <- false;
          uadj.(k).(j) <- false
        done;
        decr remaining
    done;
    let root = ref 0 in
    for i = 0 to n - 1 do
      if active.(i) then root := i
    done;
    (* final selection over the wrapped full-query candidates, through
       [choose] so its branch-and-bound pruning applies *)
    let final_of entries =
      choose ~prune:true ~objective ?memo:memos.(slot) ?cache ~domains:1
        registry ~stats:slot_stats.(slot)
        (List.map (fun (c, _) -> (wrap c).plan) entries)
    in
    let goo =
      match final_of entries_u.(!root) with
      | Some pc -> pc
      | None -> no_plan_error spec ~available
    in
    (* bounded improvement: re-optimize windows of the merge tree exactly
       with DPccp, then re-join the windows (windowed DP over composite
       units when it fits the pair budget, the greedy tree shape when not);
       keep the result only when strictly cheaper *)
    let budget = ref improve_pair_budget in
    let run_window units =
      if !budget <= 0 then None
      else begin
        let before = slot_stats.(slot).csg_cmp_pairs in
        let r = dpccp_units ~pair_limit:!budget units in
        budget := !budget - (slot_stats.(slot).csg_cmp_pairs - before);
        r
      end
    in
    let wcap = max 2 (min enum_threshold max_graph_width) in
    let rec tree_leaves = function
      | Gleaf i -> [ i ]
      | Gnode (a, b) -> tree_leaves a @ tree_leaves b
    in
    let rec decompose t =
      if List.length (tree_leaves t) <= wcap then [ t ]
      else
        match t with
        | Gleaf _ -> [ t ]
        | Gnode (a, b) -> decompose a @ decompose b
    in
    let windows = decompose tree_u.(!root) in
    (* [Some entries] when the window's exact DP ran and produced entries,
       [None] when the budget denied it (the greedy subtree stands) *)
    let reopt t =
      let ls = tree_leaves t in
      if List.length ls <= 1 then None
      else
        let units =
          Array.of_list
            (List.map
               (fun i ->
                 (Aliases.singleton base_arr.(i).ref_.Plan.binding, seeds.(i)))
               ls)
        in
        match run_window units with
        | Some (_ :: _ as entries) -> Some entries
        | Some [] | None -> None
    in
    let wimproved = List.map (fun t -> (t, reopt t)) windows in
    (* re-join the improved windows along the greedy tree shape. When the
       budget denied every window there is nothing to re-join — the GOO
       plan stands as-is, and no composite tree is ever re-costed. *)
    let improved_entries =
      let r =
        if List.for_all (fun (_, o) -> o = None) wimproved then None
        else begin
          let rec eval t =
            match List.assq_opt t wimproved with
            | Some (Some entries) -> entries
            | Some None | None -> (
              match t with
              | Gleaf i -> seeds.(i)
              | Gnode (a, b) -> merge_entries (eval a) (eval b))
          in
          Some (eval tree_u.(!root))
        end
      in
      r
    in
    match improved_entries with
    | Some (_ :: _ as entries) -> (
      match final_of entries with
      | Some (p, c) when c < snd goo -> (p, c)
      | _ -> goo)
    | _ -> goo
  in

  let finish result =
    for s = 1 to p - 1 do
      merge_stats ~into:slot_stats.(0) slot_stats.(s)
    done;
    (match caller_stats with
     | Some into -> merge_stats ~into slot_stats.(0)
     | None -> ());
    result
  in
  let run () =
    match enum with
    | Dp -> run_dp ()
    | Dpccp -> run_dpccp ()
    | Greedy -> run_greedy ()
    | Auto ->
      if n <= min (max 1 enum_threshold) max_graph_width then run_dpccp ()
      else run_greedy ()
  in
  match run () with
  | result -> finish result
  | exception e ->
    ignore (finish ());
    raise e
