(** The mediator query optimizer (paper §2.2): enumerates access plans — join
    orders (bushy, both orientations) and operator placement (wrapper-side
    subtrees under [submit] vs mediator-side composition) — and selects the
    plan with the lowest estimated TotalTime under the blended cost model.

    {!enumerate} exhaustively generates complete plans (used by the
    validation benches, in particular the branch-and-bound ablation of
    §4.3.2); {!optimize} is the subset-DP used during normal query
    processing. *)

open Disco_algebra
open Disco_core

(** One base relation of the query, with its selection pushed down and the
    attributes the rest of the query needs from it. The capability flags come
    from the wrapper's registration (paper §2.1). *)
type base = {
  ref_ : Plan.collection_ref;
  pred : Pred.t;                 (** local selection; [True] if none *)
  project : string list option;  (** [None]: keep all attributes *)
  can_select : bool;
  can_project : bool;
}

type spec = {
  bases : base list;
  joins : (string * string * Pred.t) list;
      (** join predicates, each connecting two aliases *)
  can_join : string -> bool;
      (** whether a source can execute joins (capability, paper §2.1) *)
}

val base_plan : base -> Plan.t
(** The wrapper-side plan of one base relation (scan, pushed selection,
    width projection) — restricted to the operators the wrapper supports. *)

val base_residual : base -> Pred.t
(** The part of the base selection a capability-limited wrapper cannot
    execute; the mediator applies it above the submit. *)

val submit_base : base -> Plan.t
(** A single base relation as a complete mediator-side plan: submit the
    wrapper-capable part and apply the residual above it. *)

val enumerate : spec -> Plan.t list
(** All complete mediator-side plans joining every base (exponential — small
    queries only). No cross products: a disconnected join graph yields plans
    only for the connected parts, and none overall. *)

(** Counters filled during cost-based selection, for the T5 ablation. *)
type stats = {
  mutable plans_considered : int;
  mutable plans_aborted : int;
  mutable formula_evals : int;
}

val new_stats : unit -> stats

val merge_stats : into:stats -> stats -> unit
(** Add a partial's counters into [into]. Parallel selection gives every
    domain slot its own [stats] and merges the partials exactly once, in
    slot order, at the fork/join barrier — counters are never mutated from
    two domains. *)

(** What the optimizer minimizes: the time to the complete answer (default),
    or the time to the first object (the paper's TimeFirst — interactive
    clients). Pipelined strategies tend to win the latter; blocking ones
    (hash joins, sorts) the former. *)
type objective = Total_time | First_tuple

val cost_of :
  ?bound:float -> ?objective:objective -> ?memo:Estimator.memo ->
  ?cache:Plancache.t -> ?shard:int -> Registry.t -> stats -> Plan.t ->
  float option
(** Estimated cost of a complete plan under the objective; [bound] enables
    the early-abort heuristic of §4.3.2 (TotalTime only) and [None] reports
    an abort. [memo] shares subtree annotations with earlier estimates of
    the same optimizer run; [cache] consults and feeds the cross-query
    {!Plancache}. Neither changes computed costs — only what is recomputed.
    Aborted estimates are never cached. Counters land in exactly the
    [stats] record passed here — parallel callers hand each domain its own
    and merge with {!merge_stats}. [shard] is the VM slot-cache shard
    (see {!Disco_core.Estimator.estimate}); a [memo] must stay within one
    shard. *)

val choose :
  ?prune:bool -> ?objective:objective -> ?memo:Estimator.memo ->
  ?cache:Plancache.t -> ?domains:int -> Registry.t -> ?stats:stats ->
  Plan.t list -> (Plan.t * float) option
(** Cheapest plan of an explicit list, with branch-and-bound pruning against
    the best cost so far (default on). [domains] (default 1) costs
    contiguous chunks of the list concurrently; the chunk winners reduce
    under the sequential keep-the-earlier tie-break, so the chosen plan and
    cost are bit-identical at any domain count ([memo] then serves chunk 0;
    the other chunks get fresh memos). With pruning, [plans_aborted] may
    differ across domain counts — bounds are chunk-local — but the winner
    cannot. *)

val optimize :
  ?objective:objective -> ?memo:bool -> ?cache:Plancache.t ->
  ?available:(string -> bool) -> ?domains:int -> ?stats:stats ->
  Registry.t -> spec -> Plan.t * float
(** Dynamic programming over alias subsets, keeping the best candidate per
    site (one per source for unwrapped subplans, one mediator-side). [memo]
    (default on) shares subtree annotations across the run, so the DP never
    re-runs the estimator on an already-costed subtree; [cache] carries
    complete-plan costs across queries. Both are value-preserving: the chosen
    plan and cost are identical with and without them. [available] (default:
    everything) excludes sources — e.g. those with an open circuit breaker —
    from plan seeding, so no generated plan touches them.

    [domains] (default 1) distributes each subset size across a domain pool
    (subsets of one size are mutually independent); every slot costs with
    its own estimator memo, stats and VM shard, and the per-subset results
    are installed at the size barrier in enumeration order. The chosen plan,
    its cost, the DP table and the merged [plans_considered] /
    [plans_aborted] are bit-identical at any domain count; [formula_evals]
    depends on the memo configuration (per-slot memos change what is
    recomputed, never a value). [stats] receives the merged counters of the
    run.
    @raise Disco_common.Err.Plan_error on an empty or disconnected query, or
    when exclusions leave some relation without a source. *)
