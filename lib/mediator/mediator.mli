(** The mediator facade: registration phase (paper Fig 1) and query
    processing phase (Fig 2).

    {!register} uploads a wrapper's schemas, statistics and cost rules into
    the catalog and rule registry; {!run_query} parses a declarative query,
    optimizes it under the blended cost model, executes the chosen plan —
    submitting subplans to wrappers and composing their answers — and feeds
    measured costs back into the historical-cost extension. *)

open Disco_catalog
open Disco_algebra
open Disco_core
open Disco_exec
open Disco_wrapper
open Disco_sql

type t

(** Feedback-driven statistics (§4.3, DESIGN.md §11). [Stats_off] (the
    default) keeps every estimate bit-identical to a mediator without the
    subsystem. [Stats_feedback fb] harvests wrapper sample exports into
    equi-depth histograms at registration, compares estimated and measured
    cardinalities of every executed wrapper subplan to maintain
    per-predicate selectivity corrections, and — on sustained drift per
    [fb] — bumps the model generation and re-harvests the drifting source's
    histograms. *)
type stats_mode = Stats_off | Stats_feedback of History.feedback

val create :
  ?backend:Registry.backend -> ?calibration:Generic.calibration ->
  ?history_mode:History.mode -> ?cache:bool -> ?policy:Health.policy ->
  ?lint:[ `Error | `Warn | `Off ] -> ?domains:int -> ?stats_mode:stats_mode ->
  ?enum_mode:Optimizer.enum_mode -> ?enum_threshold:int -> unit -> t
(** A fresh mediator with its generic cost model installed. [backend]
    selects the formula backend (bytecode by default; [Registry.Closure] is
    the differential reference). [cache] (default on) enables the
    cross-query plan/cost cache; disabling it is the reference behavior the
    differential tests compare against. [policy] sets the submit policy —
    per-source timeout, retry budget, backoff, circuit breaker
    ({!Health.default_policy} when omitted). [lint] is the strict-mode
    contract for registration-time static analysis
    ({!Disco_analysis.Analyzer}): [`Error] rejects (and rolls back) an
    export whose lint has error-severity findings, [`Warn] (the default)
    logs findings and keeps them inspectable via {!last_lint}, [`Off]
    skips the analyzer. [domains] sets the degree of the domain pool used
    for parallel plan search and scatter-gather submit execution (clamped
    to [1 .. Disco_parallel.Pool.max_domains]; default: the
    [DISCO_DOMAINS] environment variable, else 1). Parallelism is
    value-preserving: answers, chosen plans and costs, history, the
    simulated clock and breaker state are bit-identical at any domain
    count. *)

val domains : t -> int
(** The domain-pool degree this mediator optimizes and executes with. *)

val stats_mode : t -> stats_mode

val enum_mode : t -> Optimizer.enum_mode
(** The join-enumeration engine queries optimize with (the CLI's [--enum];
    default from [DISCO_ENUM], else [Auto]). *)

val enum_threshold : t -> int
(** The relation count where [Auto] hands exact DPccp over to greedy. *)

val optimizer_stats : t -> Optimizer.stats
(** A copy of the cumulative optimizer counters over every optimization this
    mediator ran (plans considered/aborted, formula evaluations, csg–cmp
    pairs, DP entries) — the plan-search cost the server's /metrics
    reports. *)

val refresh_histograms : t -> source:string -> unit
(** Re-sample a registered source and rebuild its histograms; a no-op when
    statistics are off or the source is unknown. Invoked automatically on
    drift; exposed for administrative refresh (the paper's §2.1 interface
    for out-of-date statistics). *)

val registry : t -> Registry.t
val catalog : t -> Catalog.t

val history : t -> History.t
(** The active history partition (the one {!run_query} feeds). *)

val fresh_history : t -> History.t
(** A new, empty history partition wired like the mediator's own: same
    mode, and — when feedback statistics are on — the same drift hook
    (histogram recalibration). The server keeps one per tenant and swaps
    it in with {!set_history} before each query. *)

val set_history : t -> History.t -> unit
(** Make [h] the active history partition. The caller must serialize this
    with query execution (the server holds its execution lock across
    [set_history] + {!run_query}). *)

val plancache : t -> Plancache.t
(** The cross-query plan/cost cache (its counters report hits, misses, stale
    drops and evictions even when disabled — a disabled cache is simply never
    consulted). *)

val cache_enabled : t -> bool
val set_cache_enabled : t -> bool -> unit

val health : t -> Health.t
(** Per-source submit outcomes and circuit-breaker state. *)

val now : t -> float
(** The mediator's simulated clock (ms). It advances only when submit
    traffic runs: wrapper work, communication, injected anomalies, retry
    backoff. Fault windows and breaker cooldowns live on this clock. *)

val set_now : t -> float -> unit
(** Move the clock, e.g. to let a circuit-breaker cooldown elapse in tests
    or demos. *)

val register : t -> Wrapper.t -> unit
(** The registration phase: the wrapper returns schemas, statistics and cost
    information; the mediator compiles and stores them, then statically
    analyzes the blended model per the mediator's [lint] mode.
    Re-registering a wrapper refreshes its statistics.
    @raise Disco_common.Err.Eval_error in [`Error] lint mode when the
    export has error-severity findings; the source's rules are rolled
    back. *)

val lint_mode : t -> [ `Error | `Warn | `Off ]

val last_lint : t -> Disco_analysis.Analyzer.finding list
(** Findings from the most recent {!register} (empty in [`Off] mode). *)

val find_wrapper : t -> string -> Wrapper.t
(** @raise Disco_common.Err.Unknown_source when absent. *)

(** {1 Query resolution} *)

(** A resolved query: the optimizer spec plus the mediator-side decoration. *)
type resolved = {
  spec : Optimizer.spec;
  post_pred : Pred.t;        (** residual mediator-side predicate *)
  deferrable : (string * Pred.t) list;
      (** expensive (ADT) single-relation predicates whose placement —
          pushed to the wrapper or deferred past the joins — is decided by
          cost (paper §7) *)
  items : Sql.item list;
  star : bool;
  star_attrs : string list;
  distinct : bool;
  group_by : string list;
  order_by : (string * Plan.order) list;
  limit : int option;
}

val resolve : t -> Sql.t -> resolved
(** Resolve relations to sources, qualify attribute references, partition the
    WHERE clause into pushed selections / join predicates / residual, and
    compute per-relation width projections.
    @raise Disco_common.Err.Plan_error on unknown or ambiguous names. *)

val variants : resolved -> resolved list
(** The placement alternatives for deferrable (ADT) predicates: pushed into
    their base relation's selection, or evaluated at the mediator after the
    joins. A single element when the query has none. *)

val decorate : resolved -> Plan.t -> Plan.t
(** Wrap an optimized join tree with the mediator-side decoration: residual
    predicate, aggregation or projection, dedup, sort. *)

val plan_of_variant :
  ?objective:Optimizer.objective -> ?available:(string -> bool) -> t ->
  resolved -> Plan.t
(** Optimize one resolved variant into a complete decorated plan. Sources
    with an open circuit breaker are excluded from plan seeding.
    [available] overrides the availability check — {!run_query} passes a
    per-query memoized view, because {!Health.available} is the breaker's
    single-admission probe point and must be consulted once per source per
    query. *)

val check_sources_available : ?available:(string -> bool) -> t -> resolved -> unit
(** @raise Disco_common.Err.Source_unavailable when a relation's source has
    an open circuit breaker (graceful degradation's fail-fast edge: no plan
    remains for a single-sourced collection). [available] as in
    {!plan_of_variant}. *)

val plan_query : ?objective:Optimizer.objective -> t -> string -> Plan.t * float
(** Parse, resolve and optimize; returns the full plan and its estimated cost
    under the objective (TotalTime by default, TimeFirst for interactive
    first-answer latency). *)

(** {1 Execution} *)

val mediator_run_env : t -> Run.env
(** The mediator's composition engine (in-memory, hash equi-joins), with the
    ADT implementations shipped by the registered wrappers. *)

val to_physical : t -> Plan.t -> Disco_exec.Physical.t
(** Execute all [submit] subtrees in their wrappers (charging communication
    per the wrapper's network and feeding history) and translate the
    remaining composition operators; the result runs under
    {!mediator_env}. With {!domains} above 1, submits to injector-free
    sources scatter across the domain pool (grouped per source — wrapper
    buffers make same-source submits order-dependent) while all mediator
    accounting gathers sequentially in plan order, so results are
    bit-identical to the sequential path. *)

type answer = {
  rows : Tuple.t list;
  plan : Plan.t;
  estimate : Estimator.ann;
  measured : Run.vector;
  replans : int;  (** mid-execution replans this query needed *)
  recovered : Run.submit_failure list;
      (** submit failures the replans recovered from *)
}

(** Structured partial-failure report: what failed, how often the query was
    replanned, and which sources are out with their retry times. *)
type report = {
  failures : Run.submit_failure list;
  replans : int;
  unavailable : (string * float) list;
}

exception Degraded of report
(** Raised by {!run_query} when replanning cannot recover the query. *)

val pp_report : Format.formatter -> report -> unit

exception Invalid_plan of Disco_analysis.Plancheck.finding list
(** A chosen plan failed whole-plan verification (the [Error]-severity
    findings). Raised by {!run_query} under [~verify:true]; the server
    turns it into a typed protocol rejection. *)

val verify_plan : ?deep:bool -> t -> Plan.t -> Disco_analysis.Plancheck.finding list
(** Whole-plan verification of a mediator plan: typed well-formedness
    ({!Disco_analysis.Plancheck}, mediator placement rules) plus — when
    [deep], the default — cardinality/cost-bound validation of its
    estimates ({!Disco_analysis.Planbound}). *)

val run_query :
  ?objective:Optimizer.objective -> ?max_replans:int -> ?verify:bool ->
  t -> string -> answer
(** The full query-processing phase of Fig 2, under the degradation
    contract: a submit that exhausts its retry budget triggers a replan (up
    to [max_replans], default 2) against the sources still healthy; when
    recovery is impossible the accumulated failures surface as {!Degraded}.
    A query needing an already-open source raises
    [Disco_common.Err.Source_unavailable] directly. With [~verify:true]
    (default false) the chosen plan is verified — reusing the answer's own
    estimation tree, so no second estimation pass — and {!Invalid_plan}
    raised before any execution. *)

val explain : t -> string -> string
(** The chosen plan plus per-node cost estimates annotated with the scope of
    the rule that produced each. *)

val analyze : ?objective:Optimizer.objective -> t -> string -> string
(** EXPLAIN ANALYZE: execute the query and report estimated vs measured cost,
    per wrapper subquery and overall — the feedback an administrator uses to
    decide which wrappers need better cost rules. *)
