(** Abstract syntax of the cost communication language (paper §3, Figs 5
    and 9).

    A wrapper exports a [source] declaration containing interface
    descriptions (an IDL subset with cardinality sections) and cost rules.
    Rules may appear inside an interface (collection scope) or at top level
    (wrapper or predicate scope). [let] binds wrapper parameters such as
    [PageSize]; [def] declares wrapper-defined functions usable in formulas
    (the paper's "ad-hoc function defined by the wrapper implementor"). *)

open Disco_common
open Disco_algebra
open Disco_catalog

(** Source location of a syntactic element, threaded from the lexer. [None]
    positions mark rules synthesized programmatically rather than parsed. *)
type pos = { line : int; col : int }

val pp_pos : Format.formatter -> pos -> unit
(** ["line:col"]. *)

type binop = Add | Sub | Mul | Div

type expr =
  | Num of float
  | Str of string               (** string literal, valid as a function argument *)
  | Ref of string list          (** path: [C], [C.CountObject], [Employee.salary.Min] *)
  | Neg of expr
  | Binop of binop * expr * expr
  | Call of string * expr list

(** The five result variables of the grammar in Fig 9. *)
type cost_var = Total_time | Time_first | Time_next | Count_object | Total_size

val cost_var_name : cost_var -> string
(** ["TotalTime"], ["TimeFirst"], ["TimeNext"], ["CountObject"],
    ["TotalSize"]. *)

val cost_var_of_name : string -> cost_var option

val all_cost_vars : cost_var list
(** In canonical evaluation order: statistics first, then times. *)

(** Head argument patterns. Following the paper's examples (Fig 8:
    [select(C, A = V)] vs [scan(employee)]), an identifier is a free variable
    iff it is a single capital letter optionally followed by digits. *)
type arg_pat =
  | Pvar of string       (** free variable, binds during matching *)
  | Pname of string      (** literal collection or attribute name *)
  | Pconst of Constant.t (** literal constant in a predicate position *)

type pred_pat =
  | Ppred_var of string                   (** [select(C, P)]: any predicate *)
  | Pcmp of arg_pat * Pred.cmp * arg_pat  (** [select(C, A = V)], [join(.., A = B)] *)

type head =
  | Hscan of arg_pat
  | Hselect of arg_pat * pred_pat
  | Hproject of arg_pat * arg_pat   (** second argument binds the attribute list *)
  | Hsort of arg_pat * arg_pat
  | Hjoin of arg_pat * arg_pat * pred_pat
  | Hunion of arg_pat * arg_pat
  | Hdedup of arg_pat
  | Haggregate of arg_pat * arg_pat (** second argument binds the grouping *)
  | Hsubmit of arg_pat * arg_pat    (** [submit(W, C)] *)

val head_operator : head -> string

(** Assignment targets in a rule body. Besides the five result variables, a
    body may bind local intermediates used by later formulas — the paper's
    Fig 13 computes [CountPage] before using it in [TotalTime]. *)
type target = Cost of cost_var | Local of string

val target_of_name : string -> target

val target_name : target -> string

val head_var_names : head -> string list
(** Names bound by matching the head: the free variables of its operand,
    attribute and predicate positions. References whose first segment is one
    of these resolve through the match bindings, never statically. *)

type rule = {
  head : head;
  body : (target * expr) list;  (** declaration order; scoping is sequential *)
  rule_pos : pos option;          (** position of the [rule] keyword *)
  body_pos : (string * pos) list; (** assignment-target name -> position *)
}

val mk_rule : ?pos:pos -> ?body_pos:(string * pos) list ->
  head -> (target * expr) list -> rule
(** Build a rule; positions default to absent (synthesized rule). *)

val target_pos : rule -> string -> pos option
(** Position of the assignment to the named target, when parsed. *)

val erase_rule_pos : rule -> rule
(** Drop all positions. Positions don't participate in semantic identity;
    comparisons of reparsed rules should erase them first. *)

val rule_provides : rule -> cost_var list
(** Cost variables the rule has formulas for. *)

type member =
  | Attr_decl of Schema.ty * string
  | Extent_decl of { count : float; total : float; objsize : float }
  | Attr_stats of {
      attr : string;
      indexed : bool;
      distinct : float;
      min : Constant.t;
      max : Constant.t;
    }
  | Iface_rule of rule

type interface_decl = {
  iface_name : string;
  iface_parent : string option;
      (** single inheritance ([interface Manager : Employee]): the child
          interface inherits the parent's attributes, and the parent's
          collection-scope rules apply to the child unless overridden *)
  members : member list;
}

type item =
  | Let of string * expr
  | Def of string * string list * expr
  | Interface of interface_decl
  | Toplevel_rule of rule
  | Capabilities of string list
      (** operators the wrapper can execute (paper §2.1); absent = all *)

type source_decl = { source_name : string; items : item list }

val erase_source_pos : source_decl -> source_decl
(** [erase_rule_pos] applied to every rule in the declaration. *)

val is_variable_name : string -> bool
(** The free-variable convention: a single capital letter, optionally
    followed by digits ([C], [A], [V], [R1], ...). *)

val arg_pat_of_ident : string -> arg_pat

val rules_of_source : source_decl -> (string option * rule) list
(** All rules with the name of their enclosing interface, if any. *)
