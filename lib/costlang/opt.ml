(* Registration-time optimizer over cost-formula ASTs, run before bytecode
   compilation (the "semi-compiled" step of paper §2.4 made real).

   Every rewrite must be observationally equivalent to the closure reference
   backend (lib/costlang/compile.ml) — the differential suite in
   test/test_vm.ml asserts bit-identical values and identical Eval_error
   behavior. That drives three restrictions:

   - folding never removes a computation that can raise: [x / 0] is kept so
     the division-by-zero error of the reference backend is reproduced, and
     effect-dropping rewrites ([0 * x] -> [0]) only fire when [x] provably
     cannot raise;

   - identity rewrites ([x * 1] -> [x]) change the *representation* of the
     result (the reference backend always returns a [Vnum]; [x] alone may
     resolve to a [Vconst] or [Vname]), so they are only applied in numeric
     context — operand positions of arithmetic, where the consumer coerces
     with [Value.to_num] either way. Function-argument and assignment
     positions keep the original shape;

   - [def] inlining is beta reduction, which duplicates (params used twice)
     or drops (params unused) argument evaluation. Arguments are therefore
     restricted to atoms — literals, which cannot raise, or references,
     which are pure and deterministic within one evaluation and which a
     dropped-use mismatch can only affect if they fail to resolve, in which
     case the argument must appear at least once in the body. *)

(* --- Constant folding and algebraic simplification ------------------------ *)

let binop_fn = function
  | Ast.Add -> ( +. )
  | Ast.Sub -> ( -. )
  | Ast.Mul -> ( *. )
  | Ast.Div -> ( /. )  (* only applied to folds with a nonzero divisor *)

(* [e] can neither raise nor evaluate to a non-numeric value: literals and
   division-free arithmetic over them. (References may fail to resolve or
   resolve to names/predicates; calls may raise; division may divide by
   zero.) *)
let rec never_raises = function
  | Ast.Num _ -> true
  | Ast.Neg e -> never_raises e
  | Ast.Binop (Ast.Div, _, _) -> false
  | Ast.Binop (_, a, b) -> never_raises a && never_raises b
  | Ast.Str _ | Ast.Ref _ | Ast.Call _ -> false

(* Simplify one node whose children are already simplified. [num] marks
   numeric context: the consumer coerces the result with [Value.to_num], so
   rewrites that return a subterm of a different value representation are
   allowed. *)
let simplify_node ~num (e : Ast.expr) : Ast.expr =
  match e with
  | Ast.Neg (Ast.Num a) -> Ast.Num (-.a)
  | Ast.Neg (Ast.Neg x) when num -> x
  | Ast.Binop (Ast.Div, _, Ast.Num 0.) -> e  (* keep: must raise like the reference *)
  | Ast.Binop (op, Ast.Num a, Ast.Num b) -> Ast.Num (binop_fn op a b)
  | Ast.Binop (Ast.Mul, x, Ast.Num 1.) when num -> x
  | Ast.Binop (Ast.Mul, Ast.Num 1., x) when num -> x
  | Ast.Binop (Ast.Mul, x, Ast.Num 0.) when num && never_raises x -> Ast.Num 0.
  | Ast.Binop (Ast.Mul, Ast.Num 0., x) when num && never_raises x -> Ast.Num 0.
  | Ast.Binop (Ast.Add, x, Ast.Num 0.) when num -> x
  | Ast.Binop (Ast.Add, Ast.Num 0., x) when num -> x
  | Ast.Binop (Ast.Sub, x, Ast.Num 0.) when num -> x
  | Ast.Binop (Ast.Div, x, Ast.Num 1.) when num -> x
  | e -> e

let rec simplify ?(num = false) (e : Ast.expr) : Ast.expr =
  match e with
  | Ast.Num _ | Ast.Str _ | Ast.Ref _ -> e
  | Ast.Neg x -> simplify_node ~num (Ast.Neg (simplify ~num:true x))
  | Ast.Binop (op, a, b) ->
    simplify_node ~num (Ast.Binop (op, simplify ~num:true a, simplify ~num:true b))
  | Ast.Call (name, args) ->
    (* argument representations are observable (e.g. [selectivity(A, V)]
       matches on constructors), so arguments are non-numeric context *)
    Ast.Call (name, List.map (simplify ~num:false) args)

(* --- Def inlining --------------------------------------------------------- *)

(* An argument that is safe to substitute for a parameter: duplicating or
   reordering its evaluation cannot change the result. Literals additionally
   cannot raise, so they may be dropped (unused parameter); a reference may
   fail to resolve, so it must survive at least once. *)
let atom = function Ast.Num _ | Ast.Str _ | Ast.Ref _ -> true | _ -> false
let droppable = function Ast.Num _ | Ast.Str _ -> true | _ -> false

(* Occurrences of [name] as a whole single-segment reference — the only
   positions [Compile.apply_def] shadows (a multi-segment [x.Stat] resolves
   through the ambient context even when [x] is a parameter). *)
let rec param_uses name = function
  | Ast.Num _ | Ast.Str _ -> 0
  | Ast.Ref [ x ] -> if String.equal x name then 1 else 0
  | Ast.Ref _ -> 0
  | Ast.Neg e -> param_uses name e
  | Ast.Binop (_, a, b) -> param_uses name a + param_uses name b
  | Ast.Call (_, args) ->
    List.fold_left (fun acc a -> acc + param_uses name a) 0 args

(* Simultaneous substitution of parameters by their (atomic) arguments.
   Only whole single-segment references are replaced; a [Ref [p]] introduced
   by the substitution itself is not revisited (single pass), matching the
   reference semantics where an argument is evaluated in the caller's
   context. *)
let rec subst (bound : (string * Ast.expr) list) = function
  | (Ast.Num _ | Ast.Str _) as e -> e
  | Ast.Ref [ x ] as e ->
    (match List.assoc_opt x bound with Some a -> a | None -> e)
  | Ast.Ref _ as e -> e
  | Ast.Neg e -> Ast.Neg (subst bound e)
  | Ast.Binop (op, a, b) -> Ast.Binop (op, subst bound a, subst bound b)
  | Ast.Call (name, args) -> Ast.Call (name, List.map (subst bound) args)

let max_inline_depth = 16

(* Inline calls to wrapper-defined functions. [lookup] returns the parameter
   list and body AST of a def visible to the rule being compiled (its own
   source's, falling back to the generic model's). Calls on a recursion
   cycle, with an arity mismatch, or with non-atomic arguments are left for
   the runtime [apply_def] path. *)
let inline_defs ~(lookup : string -> (string list * Ast.expr) option) (e : Ast.expr) :
    Ast.expr =
  let rec go ~depth ~expanding e =
    match e with
    | Ast.Num _ | Ast.Str _ | Ast.Ref _ -> e
    | Ast.Neg e -> Ast.Neg (go ~depth ~expanding e)
    | Ast.Binop (op, a, b) ->
      Ast.Binop (op, go ~depth ~expanding a, go ~depth ~expanding b)
    | Ast.Call (name, args) ->
      let args = List.map (go ~depth ~expanding) args in
      let fallback () = Ast.Call (name, args) in
      if depth >= max_inline_depth || List.mem name expanding then fallback ()
      else
        (match lookup name with
         | None -> fallback ()
         | Some (params, body) ->
           if List.length params <> List.length args then fallback ()
           else if not (List.for_all atom args) then fallback ()
           else if
             not
               (List.for_all2
                  (fun p a -> droppable a || param_uses p body >= 1)
                  params args)
           then fallback ()
           else
             let inlined = subst (List.combine params args) body in
             go ~depth:(depth + 1) ~expanding:(name :: expanding) inlined)
  in
  go ~depth:0 ~expanding:[] e

(* The full registration-time pipeline for one formula. *)
let pipeline ~lookup (e : Ast.expr) : Ast.expr = simplify (inline_defs ~lookup e)
