(** Compilation of cost formulas into closures.

    This mirrors the paper's "semi-compiled bytecode" shipping (§2.4): a
    wrapper's rule text is compiled once at registration time; evaluation
    during query optimization runs the resulting closures without
    re-parsing. The compiled code is parameterized by a {!ctx} supplied by
    the mediator's estimator. *)

type ctx = {
  resolve_ref : string list -> Value.t;
      (** Resolve a reference path: head bindings, statistics, child cost
          variables, wrapper parameters... *)
  call : string -> Value.t list -> Value.t;
      (** Dispatch a function call: builtins, wrapper [def]s, and context
          functions such as [sel]. *)
}

type compiled = ctx -> Value.t

val compile : Ast.expr -> compiled

val eval_num : compiled -> ctx -> float
(** Evaluate and coerce to a number. *)

(** A wrapper-defined function ([def f(x, y) = ...]). [def_ast] is the
    source of [body], kept for registration-time inlining
    ({!Opt.inline_defs}). *)
type def = { params : string list; body : compiled; def_ast : Ast.expr }

val compile_def : params:string list -> Ast.expr -> def

val apply_def : def -> ctx -> Value.t list -> Value.t
(** Call a def; the parameters shadow the ambient reference resolution.
    @raise Disco_common.Err.Eval_error on arity mismatch. *)

val refs : Ast.expr -> string list list
(** Static analysis: the reference paths a formula makes. Used to propagate
    required-variable lists to children (the optimizations of paper §4.2). *)
