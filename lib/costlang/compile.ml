(* Compilation of cost formulas into closures. This mirrors the paper's
   "semi-compiled bytecode" (§2.4): a wrapper's rule text is compiled once at
   registration time; evaluation during query optimization runs the resulting
   closures without re-parsing.

   The compiled code is parameterized by a [ctx]: the mediator provides
   reference resolution (statistics paths, child cost variables, bound head
   variables) and function dispatch (builtins, wrapper [def]s, and
   context-dependent functions such as [sel]). *)

open Disco_common

type ctx = {
  resolve_ref : string list -> Value.t;
  call : string -> Value.t list -> Value.t;
}

type compiled = ctx -> Value.t

let rec compile (e : Ast.expr) : compiled =
  match e with
  | Ast.Num f ->
    let v = Value.Vnum f in
    fun _ -> v
  | Ast.Str s ->
    let v = Value.Vconst (Constant.String s) in
    fun _ -> v
  | Ast.Ref path -> fun ctx -> ctx.resolve_ref path
  | Ast.Neg e ->
    let c = compile e in
    fun ctx -> Value.Vnum (-.Value.to_num (c ctx))
  | Ast.Binop (op, a, b) ->
    let ca = compile a and cb = compile b in
    let f =
      match op with
      | Ast.Add -> ( +. )
      | Ast.Sub -> ( -. )
      | Ast.Mul -> ( *. )
      | Ast.Div ->
        fun x y ->
          if y = 0. then raise (Err.Eval_error "division by zero in cost formula")
          else x /. y
    in
    fun ctx -> Value.Vnum (f (Value.to_num (ca ctx)) (Value.to_num (cb ctx)))
  | Ast.Call (name, args) ->
    let cargs = List.map compile args in
    fun ctx -> ctx.call name (List.map (fun c -> c ctx) cargs)

let eval_num (c : compiled) ctx = Value.to_num (c ctx)

(* A wrapper-defined function ([def f(x, y) = ...]): compiled once; at call
   time the parameters shadow the ambient reference resolution. The source
   AST is kept so the bytecode backend can inline non-recursive defs at rule
   registration ([Opt.inline_defs]). *)
type def = { params : string list; body : compiled; def_ast : Ast.expr }

let compile_def ~params body = { params; body = compile body; def_ast = body }

let apply_def (d : def) (ctx : ctx) (args : Value.t list) : Value.t =
  if List.length args <> List.length d.params then
    raise
      (Err.Eval_error
         (Fmt.str "function expects %d arguments, got %d" (List.length d.params)
            (List.length args)));
  let bound = List.combine d.params args in
  let inner =
    { ctx with
      resolve_ref =
        (fun path ->
          match path with
          | [ x ] when List.mem_assoc x bound -> List.assoc x bound
          | _ -> ctx.resolve_ref path) }
  in
  d.body inner

(* Static analysis: which references does a formula make? Used by the
   estimator's phase 1 to propagate required-variable lists to children
   (paper §4.2, optimization (i)/(ii)). *)
let rec refs (e : Ast.expr) : string list list =
  match e with
  | Ast.Num _ | Ast.Str _ -> []
  | Ast.Ref p -> [ p ]
  | Ast.Neg e -> refs e
  | Ast.Binop (_, a, b) -> refs a @ refs b
  | Ast.Call (_, args) -> List.concat_map refs args
