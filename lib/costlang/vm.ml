(* Flat bytecode for cost formulas: the fast backend behind the paper's
   "semi-compiled bytecode" shipping (§2.4).

   A formula compiles once, at registration time, into a flat instruction
   array executed over an explicit operand stack — no per-node closure
   allocation and no tree walk at evaluation time. Two operand stacks are
   used: arithmetic runs on an unboxed float stack (the numeric fast path);
   values that must keep their representation — function arguments, string
   literals, whole-formula results — live on a [Value.t] stack. The compiler
   knows the context of every subterm, so each instruction targets exactly
   one stack and the two never need a runtime tag.

   References are split statically:

   - *slot* references ([NSlot]/[VSlot]) have no dynamic segment — their
     first segment is not a head variable, an earlier body local or a cost
     variable, and no later segment is a head variable. They resolve to the
     same value for a given (rule, evaluation source) while the cost model
     is unchanged, so the estimator pre-resolves them into a per-rule slot
     table stamped with {!Disco_core.Registry.generation} (see {!slots});

   - *dynamic* references ([NRef]/[VRef]) go through the estimator's full
     resolution (head bindings, child cost variables, body locals). The
     body's distinct dynamic paths are interned at compile time, and a
     per-rule-instance memo bank ([ctx.dmemo]) resolves each non-volatile
     path once per instance evaluation — the closure backend re-resolves on
     every occurrence.

   Common subexpressions within one formula are evaluated once and reused
   via a temporary bank ([NStore]/[NLoad]); the store happens at the first
   occurrence in evaluation order, so error behavior matches the reference
   closure backend. *)

open Disco_common

type instr =
  (* numeric fast path: operates on the float stack *)
  | NPush of float
  | NSlot of int            (* pre-resolved reference, coerced to a number *)
  | NRef of int             (* dynamic reference (index into dpaths), coerced *)
  | NCall of string * int   (* args on the value stack; numeric result *)
  | NNeg
  | NAdd
  | NSub
  | NMul
  | NDiv
  | NLoad of int            (* push temporary [i] *)
  | NStore of int           (* copy the top of the float stack into temporary [i] *)
  | NOfV                    (* move: pop the value stack, coerce, push float *)
  | NWrap                   (* move: pop the float stack, push [Vnum] *)
  (* value path: operates on the Value.t stack, preserving representation *)
  | VPush of Value.t
  | VSlot of int
  | VRef of int
  | VCall of string * int

(* Operand stacks and the CSE temporary bank, sized exactly for one program.
   Each program owns one scratch buffer reused across its evaluations (the
   estimator runs millions of small programs per optimization); re-entrant
   evaluation of the same program — a call or dynamic reference that
   evaluates it again — falls back to a fresh allocation. *)
type scratch = {
  f : float array;   (* float operand stack *)
  v : Value.t array; (* value operand stack *)
  t : float array;   (* CSE temporary bank *)
}

(* Executable form: one packed int per instruction — opcode in the low five
   bits, operand above — so the dispatch loop is a jump table fed by a
   single unboxed array load. [code] keeps the symbolic instructions for
   disassembly and the one-instruction fast path. *)
type program = {
  code : instr array;
  insns : int array;           (* op lor (arg lsl 5); see [assemble] *)
  nums : float array;          (* NPush literals *)
  vals : Value.t array;        (* VPush literals *)
  names : string array;        (* call names *)
  fdepth : int;                (* float stack capacity *)
  vdepth : int;                (* value stack capacity *)
  ntmps : int;                 (* CSE temporary bank size *)
  scratch : scratch;
  busy : bool Atomic.t;        (* scratch claimed by an in-flight evaluation;
                                  CAS-acquired so concurrent domains fall
                                  back to a fresh allocation instead of
                                  sharing the stacks *)
}

let op_npush = 0
and op_nslot = 1
and op_nref = 2
and op_ncall = 3
and op_nneg = 4
and op_nadd = 5
and op_nsub = 6
and op_nmul = 7
and op_ndiv = 8
and op_nload = 9
and op_nstore = 10
and op_nofv = 11
and op_nwrap = 12
and op_vpush = 13
and op_vslot = 14
and op_vref = 15
and op_vcall = 16

let zero = Value.Vnum 0.

let assemble (code : instr array) =
  let n = Array.length code in
  let insns = Array.make n 0 in
  let rev_nums = ref [] and nnums = ref 0 in
  let rev_vals = ref [] and nvals = ref 0 in
  let rev_names = ref [] and nnames = ref 0 in
  let num f =
    rev_nums := f :: !rev_nums;
    incr nnums;
    !nnums - 1
  in
  let value v =
    rev_vals := v :: !rev_vals;
    incr nvals;
    !nvals - 1
  in
  let name s =
    rev_names := s :: !rev_names;
    incr nnames;
    !nnames - 1
  in
  Array.iteri
    (fun pc instr ->
      let op, arg =
        match instr with
        | NPush f -> (op_npush, num f)
        | NSlot i -> (op_nslot, i)
        | NRef i -> (op_nref, i)
        | NCall (f, argc) -> (op_ncall, (name f lsl 8) lor argc)
        | NNeg -> (op_nneg, 0)
        | NAdd -> (op_nadd, 0)
        | NSub -> (op_nsub, 0)
        | NMul -> (op_nmul, 0)
        | NDiv -> (op_ndiv, 0)
        | NLoad i -> (op_nload, i)
        | NStore i -> (op_nstore, i)
        | NOfV -> (op_nofv, 0)
        | NWrap -> (op_nwrap, 0)
        | VPush v -> (op_vpush, value v)
        | VSlot i -> (op_vslot, i)
        | VRef i -> (op_vref, i)
        | VCall (f, argc) -> (op_vcall, (name f lsl 8) lor argc)
      in
      insns.(pc) <- op lor (arg lsl 5))
    code;
  ( insns,
    Array.of_list (List.rev !rev_nums),
    Array.of_list (List.rev !rev_vals),
    Array.of_list (List.rev !rev_names) )

let make_program code ~fdepth ~vdepth ~ntmps : program =
  let insns, nums, vals, names = assemble code in
  { code; insns; nums; vals; names; fdepth; vdepth; ntmps;
    scratch =
      { f = Array.make fdepth 0.;
        v = Array.make (max 1 vdepth) zero;
        t = Array.make ntmps 0. };
    busy = Atomic.make false }

(* --- Slot tables ---------------------------------------------------------- *)

(* The per-rule table of pre-resolvable reference paths, shared by every
   formula of the rule's body. Resolved values are cached per evaluation
   source (a Default-scope rule evaluates under many sources; the same path
   may resolve differently per source through the catalog) and stamped with
   the registry generation under which they were resolved: any cost-model
   write bumps the generation, and the next evaluation re-resolves instead
   of serving stale statistics (calibration and historical updates, §4.3). *)
(* One cache column: the resolved values plus a pre-coerced float mirror so
   the numeric fast path reads an unboxed float straight out of an array.
   [bstate.(i)] is ['\000'] while slot [i] is unresolved, ['\001'] when the
   resolved value coerced to a number (then [bnums.(i)] holds it), and
   ['\002'] when it resolved to something non-numeric (a name, a string
   constant) — numeric use then re-coerces and fails with the same error
   the closure backend raises. Resolution failures cache nothing. *)
type bank = {
  bvals : Value.t option array;
  bnums : float array;
  bstate : Bytes.t;
}

let empty_bank = { bvals = [||]; bnums = [||]; bstate = Bytes.empty }

let new_bank n =
  { bvals = Array.make n None; bnums = Array.make n 0.;
    bstate = Bytes.make n '\000' }

let clear_bank (b : bank) =
  if Array.length b.bvals > 0 then begin
    Array.fill b.bvals 0 (Array.length b.bvals) None;
    Bytes.fill b.bstate 0 (Bytes.length b.bstate) '\000'
  end

(* One shard of the per-source resolution cache. A shard is owned by one
   domain (the pool slot number), so its fields need no synchronization:
   banks it creates are only ever filled and read by that domain. *)
type shard_line = {
  mutable sgen : int;  (* generation of the cached entries; min_int = none *)
  mutable scache : (string * bank) list;  (* per source *)
}

let max_shards = 64
(* matching the domain-pool clamp; shard 0 is the sequential path *)

let new_shards () =
  Array.init max_shards (fun _ -> { sgen = min_int; scache = [] })

type slots = {
  spaths : string list array;
  dpaths : string list array;
      (* the body's distinct dynamic reference paths, interned so one
         rule-instance evaluation resolves each path once through the
         [ctx.dmemo] bank *)
  dvolatile : bool array;
      (* paths whose first segment names a body target or cost variable:
         their resolution can change as body assignments complete, so they
         are never memoized within the instance *)
  shards : shard_line array;
}

let empty_slots () =
  { spaths = [||]; dpaths = [||]; dvolatile = [||]; shards = new_shards () }

let slot_count (s : slots) = Array.length s.spaths

let dyn_count (s : slots) = Array.length s.dpaths

let dyn_path (s : slots) i = s.dpaths.(i)

let dyn_volatile (s : slots) i = s.dvolatile.(i)

(* Fetch (or create) the cache column for [source] in the given shard,
   dropping that shard's cached values when the model generation moved. *)
let slot_cache ?(shard = 0) (s : slots) ~generation ~source : bank =
  let line = s.shards.(shard) in
  if line.sgen <> generation then begin
    line.scache <- [];
    line.sgen <- generation
  end;
  match List.assoc_opt source line.scache with
  | Some bank -> bank
  | None ->
    let bank = new_bank (Array.length s.spaths) in
    line.scache <- (source, bank) :: line.scache;
    bank

let slot_path (s : slots) i = s.spaths.(i)

(* --- Compilation ---------------------------------------------------------- *)

type builder = {
  mutable rev_paths : string list list;
  mutable nslots : int;
  interned : (string, int) Hashtbl.t;  (* key: joined path *)
  mutable rev_dyn : (string list * bool) list;
  mutable ndyn : int;
  dinterned : (string, int) Hashtbl.t;
}

let new_builder () =
  { rev_paths = []; nslots = 0; interned = Hashtbl.create 8;
    rev_dyn = []; ndyn = 0; dinterned = Hashtbl.create 8 }

let intern (b : builder) (path : string list) : int =
  let key = String.concat "\x00" path in
  match Hashtbl.find_opt b.interned key with
  | Some i -> i
  | None ->
    let i = b.nslots in
    b.rev_paths <- path :: b.rev_paths;
    b.nslots <- i + 1;
    Hashtbl.add b.interned key i;
    i

let intern_dyn (b : builder) (path : string list) ~volatile : int =
  let key = String.concat "\x00" path in
  match Hashtbl.find_opt b.dinterned key with
  | Some i -> i
  | None ->
    let i = b.ndyn in
    b.rev_dyn <- (path, volatile) :: b.rev_dyn;
    b.ndyn <- i + 1;
    Hashtbl.add b.dinterned key i;
    i

let finish (b : builder) : slots =
  let dyn = Array.of_list (List.rev b.rev_dyn) in
  { spaths = Array.of_list (List.rev b.rev_paths);
    dpaths = Array.map fst dyn;
    dvolatile = Array.map snd dyn;
    shards = new_shards () }

(* Count how often each CSE-able subterm occurs in numeric context. Only
   numeric-context occurrences share a (float) temporary: the same subterm
   used as a function argument must keep its value representation and is
   left alone. *)
let count_shared (top : Ast.expr) : (Ast.expr, int) Hashtbl.t =
  let tbl = Hashtbl.create 16 in
  let rec go ~num e =
    (match e with
     | Ast.Num _ | Ast.Str _ -> ()
     | Ast.Ref _ | Ast.Neg _ | Ast.Binop _ | Ast.Call _ ->
       if num then
         Hashtbl.replace tbl e (1 + Option.value ~default:0 (Hashtbl.find_opt tbl e)));
    match e with
    | Ast.Num _ | Ast.Str _ | Ast.Ref _ -> ()
    | Ast.Neg x -> go ~num:true x
    | Ast.Binop (_, a, b) ->
      go ~num:true a;
      go ~num:true b
    | Ast.Call (_, args) -> List.iter (go ~num:false) args
  in
  go ~num:false top;
  tbl

(* Compile one formula. [dynamic_first] holds for first path segments that
   resolve per evaluation (head variables, earlier body locals, cost
   variables); [head_var] for names bound by head matching (they are
   substituted into later path segments at resolution time). *)
let compile (b : builder) ~(dynamic_first : string -> bool)
    ?(volatile_first = fun (_ : string) -> false) ~(head_var : string -> bool)
    (e : Ast.expr) : program =
  let shared = count_shared e in
  let assigned : (Ast.expr, int) Hashtbl.t = Hashtbl.create 8 in
  let ntmps = ref 0 in
  let rev_code = ref [] in
  let cur_f = ref 0 and max_f = ref 0 and cur_v = ref 0 and max_v = ref 0 in
  let emit i =
    (match i with
     | NPush _ | NSlot _ | NRef _ | NLoad _ ->
       incr cur_f;
       max_f := max !max_f !cur_f
     | NCall (_, argc) ->
       cur_v := !cur_v - argc;
       incr cur_f;
       max_f := max !max_f !cur_f
     | NAdd | NSub | NMul | NDiv -> decr cur_f
     | NNeg | NStore _ -> ()
     | NOfV ->
       decr cur_v;
       incr cur_f;
       max_f := max !max_f !cur_f
     | NWrap ->
       decr cur_f;
       incr cur_v;
       max_v := max !max_v !cur_v
     | VPush _ | VSlot _ | VRef _ ->
       incr cur_v;
       max_v := max !max_v !cur_v
     | VCall (_, argc) ->
       cur_v := !cur_v - argc + 1;
       max_v := max !max_v !cur_v);
    rev_code := i :: !rev_code
  in
  let static path =
    match path with
    | [] -> false  (* resolve dynamically so the "empty reference" error matches *)
    | x :: rest ->
      (not (dynamic_first x)) && not (List.exists head_var rest)
  in
  let ref_instr ~num path =
    if static path then
      let i = intern b path in
      emit (if num then NSlot i else VSlot i)
    else
      let volatile = match path with [] -> true | x :: _ -> volatile_first x in
      let i = intern_dyn b path ~volatile in
      emit (if num then NRef i else VRef i)
  in
  let rec cval e =
    match e with
    | Ast.Num f -> emit (VPush (Value.Vnum f))
    | Ast.Str s -> emit (VPush (Value.Vconst (Constant.String s)))
    | Ast.Ref path -> ref_instr ~num:false path
    | Ast.Neg _ | Ast.Binop _ ->
      cnum e;
      emit NWrap
    | Ast.Call (name, args) ->
      List.iter cval args;
      emit (VCall (name, List.length args))
  and cnum e =
    match e with
    | Ast.Num _ | Ast.Str _ -> cnum_raw e
    | _ ->
      if Option.value ~default:0 (Hashtbl.find_opt shared e) >= 2 then (
        match Hashtbl.find_opt assigned e with
        | Some i -> emit (NLoad i)
        | None ->
          cnum_raw e;
          let i = !ntmps in
          incr ntmps;
          Hashtbl.add assigned e i;
          emit (NStore i))
      else cnum_raw e
  and cnum_raw e =
    match e with
    | Ast.Num f -> emit (NPush f)
    | Ast.Str s ->
      (* coerces (and fails) exactly like the reference backend *)
      emit (VPush (Value.Vconst (Constant.String s)));
      emit NOfV
    | Ast.Ref path -> ref_instr ~num:true path
    | Ast.Neg x ->
      cnum x;
      emit NNeg
    | Ast.Binop (op, a, b) ->
      cnum a;
      cnum b;
      emit (match op with Ast.Add -> NAdd | Ast.Sub -> NSub | Ast.Mul -> NMul | Ast.Div -> NDiv)
    | Ast.Call (name, args) ->
      List.iter cval args;
      emit (NCall (name, List.length args))
  in
  cval e;
  let code = Array.of_list (List.rev !rev_code) in
  make_program code ~fdepth:!max_f ~vdepth:!max_v ~ntmps:!ntmps

(* --- Execution ------------------------------------------------------------ *)

type ctx = {
  mutable bank : bank;            (* slot cache column (see [slot_cache]);
                                     mutable so a long-lived ctx can be
                                     repinned to the current generation's
                                     column at the start of each pass *)
  dmemo : bank;                   (* per-instance dynamic-reference memo *)
  slots : slots;
  resolve : string list -> Value.t;
  call : string -> Value.t list -> Value.t;
}

let div_error = Err.Eval_error "division by zero in cost formula"

(* First touch of a slot under the current (generation, source): resolve,
   cache the value, and classify it so later numeric reads are a plain
   float-array load. If [c.resolve] raises, nothing is cached and the next
   evaluation retries. *)
let resolve_slot (c : ctx) (i : int) : Value.t =
  let v = c.resolve (Array.unsafe_get c.slots.spaths i) in
  let b = c.bank in
  b.bvals.(i) <- Some v;
  (match Value.to_num v with
   | f ->
     b.bnums.(i) <- f;
     Bytes.set b.bstate i '\001'
   | exception _ -> Bytes.set b.bstate i '\002');
  v

let slot_value (c : ctx) (i : int) : Value.t =
  if Bytes.get c.bank.bstate i = '\000' then resolve_slot c i
  else
    match c.bank.bvals.(i) with
    | Some v -> v
    | None -> assert false

(* Numeric slot read off the fast path: unresolved or non-numeric. The
   non-numeric case re-coerces so the error matches the closure backend. *)
let slot_num_slow (c : ctx) (i : int) : float = Value.to_num (slot_value c i)

(* Dynamic reference [i]: resolve through the estimator, memoizing in
   [c.dmemo] unless the path is volatile (its resolution may change as body
   assignments complete). The memo lives for one rule-instance evaluation —
   resolution there is deterministic (bindings are fixed, body locals are
   write-once, child cost variables are memoized by the estimator), where
   the closure backend re-resolves every occurrence. Resolution failures
   cache nothing. *)
let dyn_value (c : ctx) (i : int) : Value.t =
  let m = c.dmemo in
  if Bytes.get m.bstate i <> '\000' then
    match m.bvals.(i) with
    | Some v -> v
    | None -> assert false
  else begin
    let v = c.resolve (Array.unsafe_get c.slots.dpaths i) in
    if not (Array.unsafe_get c.slots.dvolatile i) then begin
      m.bvals.(i) <- Some v;
      (match Value.to_num v with
       | f ->
         m.bnums.(i) <- f;
         Bytes.set m.bstate i '\001'
       | exception _ -> Bytes.set m.bstate i '\002')
    end;
    v
  end

let dyn_num_slow (c : ctx) (i : int) : float = Value.to_num (dyn_value c i)

let acquire (p : program) : scratch =
  if Atomic.compare_and_set p.busy false true then p.scratch
  else
    (* re-entrant or concurrent evaluation of this very program; rare *)
    { f = Array.make (Array.length p.scratch.f) 0.;
      v = Array.make (Array.length p.scratch.v) zero;
      t = Array.make (Array.length p.scratch.t) 0. }

let release (p : program) (s : scratch) =
  if s == p.scratch then Atomic.set p.busy false

(* Pop [argc] values off [vstack] into a list, preserving argument order. *)
let rec collect_args (vstack : Value.t array) base i acc =
  if i < base then acc
  else collect_args vstack base (i - 1) (Array.unsafe_get vstack i :: acc)

(* The dispatch loop is tail-recursive with [pc] and both stack pointers as
   parameters: without flambda a [ref] cell costs a real load/store per
   update, while parameters of a tail loop live in registers. *)
let exec_loop (p : program) (c : ctx) (s : scratch) : Value.t =
  let insns = p.insns in
  let stop = Array.length insns in
  let fstack = s.f and vstack = s.v and tmps = s.t in
  let bnums = c.bank.bnums and bstate = c.bank.bstate in
  let dnums = c.dmemo.bnums and dstate = c.dmemo.bstate in
  let rec loop pc fsp vsp =
    if pc = stop then Array.unsafe_get vstack (vsp - 1)
    else
      let w = Array.unsafe_get insns pc in
      let arg = w lsr 5 in
      match w land 0x1f with
      | 0 (* op_npush *) ->
        Array.unsafe_set fstack fsp (Array.unsafe_get p.nums arg);
        loop (pc + 1) (fsp + 1) vsp
      | 1 (* op_nslot *) ->
        let f =
          if Bytes.unsafe_get bstate arg = '\001' then Array.unsafe_get bnums arg
          else slot_num_slow c arg
        in
        Array.unsafe_set fstack fsp f;
        loop (pc + 1) (fsp + 1) vsp
      | 2 (* op_nref *) ->
        let f =
          if Bytes.unsafe_get dstate arg = '\001' then Array.unsafe_get dnums arg
          else dyn_num_slow c arg
        in
        Array.unsafe_set fstack fsp f;
        loop (pc + 1) (fsp + 1) vsp
      | 3 (* op_ncall *) ->
        let base = vsp - (arg land 0xff) in
        let actuals = collect_args vstack base (vsp - 1) [] in
        Array.unsafe_set fstack fsp
          (Value.to_num (c.call (Array.unsafe_get p.names (arg lsr 8)) actuals));
        loop (pc + 1) (fsp + 1) base
      | 4 (* op_nneg *) ->
        Array.unsafe_set fstack (fsp - 1) (-.Array.unsafe_get fstack (fsp - 1));
        loop (pc + 1) fsp vsp
      | 5 (* op_nadd *) ->
        Array.unsafe_set fstack (fsp - 2)
          (Array.unsafe_get fstack (fsp - 2) +. Array.unsafe_get fstack (fsp - 1));
        loop (pc + 1) (fsp - 1) vsp
      | 6 (* op_nsub *) ->
        Array.unsafe_set fstack (fsp - 2)
          (Array.unsafe_get fstack (fsp - 2) -. Array.unsafe_get fstack (fsp - 1));
        loop (pc + 1) (fsp - 1) vsp
      | 7 (* op_nmul *) ->
        Array.unsafe_set fstack (fsp - 2)
          (Array.unsafe_get fstack (fsp - 2) *. Array.unsafe_get fstack (fsp - 1));
        loop (pc + 1) (fsp - 1) vsp
      | 8 (* op_ndiv *) ->
        let y = Array.unsafe_get fstack (fsp - 1) in
        if y = 0. then raise div_error;
        Array.unsafe_set fstack (fsp - 2) (Array.unsafe_get fstack (fsp - 2) /. y);
        loop (pc + 1) (fsp - 1) vsp
      | 9 (* op_nload *) ->
        Array.unsafe_set fstack fsp (Array.unsafe_get tmps arg);
        loop (pc + 1) (fsp + 1) vsp
      | 10 (* op_nstore *) ->
        Array.unsafe_set tmps arg (Array.unsafe_get fstack (fsp - 1));
        loop (pc + 1) fsp vsp
      | 11 (* op_nofv *) ->
        Array.unsafe_set fstack fsp (Value.to_num (Array.unsafe_get vstack (vsp - 1)));
        loop (pc + 1) (fsp + 1) (vsp - 1)
      | 12 (* op_nwrap *) ->
        Array.unsafe_set vstack vsp (Value.Vnum (Array.unsafe_get fstack (fsp - 1)));
        loop (pc + 1) (fsp - 1) (vsp + 1)
      | 13 (* op_vpush *) ->
        Array.unsafe_set vstack vsp (Array.unsafe_get p.vals arg);
        loop (pc + 1) fsp (vsp + 1)
      | 14 (* op_vslot *) ->
        Array.unsafe_set vstack vsp (slot_value c arg);
        loop (pc + 1) fsp (vsp + 1)
      | 15 (* op_vref *) ->
        Array.unsafe_set vstack vsp (dyn_value c arg);
        loop (pc + 1) fsp (vsp + 1)
      | _ (* op_vcall *) ->
        let base = vsp - (arg land 0xff) in
        let actuals = collect_args vstack base (vsp - 1) [] in
        Array.unsafe_set vstack base
          (c.call (Array.unsafe_get p.names (arg lsr 8)) actuals);
        loop (pc + 1) fsp (base + 1)
  in
  loop 0 0 0

let exec (p : program) (c : ctx) : Value.t =
  (* one-instruction programs (constant rules, bare references) skip the
     stack machinery entirely *)
  if Array.length p.code = 1 then
    match Array.unsafe_get p.code 0 with
    | VPush v -> v
    | VSlot i -> slot_value c i
    | VRef i -> dyn_value c i
    | VCall (name, 0) -> c.call name []
    | _ -> assert false (* a 1-instruction program always yields a value *)
  else begin
    let s = acquire p in
    match exec_loop p c s with
    | v ->
      release p s;
      v
    | exception e ->
      release p s;
      raise e
  end

(* A trivial program for a numeric constant (query-scope historical rules). *)
let const_program (f : float) : program =
  make_program [| VPush (Value.Vnum f) |] ~fdepth:0 ~vdepth:1 ~ntmps:0

let instr_count (p : program) = Array.length p.code

let pp_instr ppf = function
  | NPush f -> Fmt.pf ppf "npush %g" f
  | NSlot i -> Fmt.pf ppf "nslot %d" i
  | NRef i -> Fmt.pf ppf "nref %d" i
  | NCall (f, n) -> Fmt.pf ppf "ncall %s/%d" f n
  | NNeg -> Fmt.string ppf "nneg"
  | NAdd -> Fmt.string ppf "nadd"
  | NSub -> Fmt.string ppf "nsub"
  | NMul -> Fmt.string ppf "nmul"
  | NDiv -> Fmt.string ppf "ndiv"
  | NLoad i -> Fmt.pf ppf "nload %d" i
  | NStore i -> Fmt.pf ppf "nstore %d" i
  | NOfV -> Fmt.string ppf "nofv"
  | NWrap -> Fmt.string ppf "nwrap"
  | VPush v -> Fmt.pf ppf "vpush %a" Value.pp v
  | VSlot i -> Fmt.pf ppf "vslot %d" i
  | VRef i -> Fmt.pf ppf "vref %d" i
  | VCall (f, n) -> Fmt.pf ppf "vcall %s/%d" f n

let pp ppf (p : program) =
  Fmt.pf ppf "@[<v>%a@]" (Fmt.array ~sep:Fmt.cut pp_instr) p.code
