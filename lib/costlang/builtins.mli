(** Pure builtin functions available in every cost formula: [exp ln log2 sqrt
    ceil floor abs pow min max if yao yaoapprox]. Functions that need
    mediator context (catalog statistics, bound predicates) — [sel],
    [indexed], ... — are provided by the estimator, not here. *)

val names : string list
(** Canonical list of pure builtins; every entry resolves through {!find}. *)

val context_function_names : string list
(** Canonical list of the functions the mediator's estimator provides at
    evaluation time beyond the pure builtins ([sel], [selectivity],
    [indexed], [rindexed], [adtcost], [adjust], [nnames], [groupcard]).
    {!Check} and the static analyzer both consume this list. *)

val yao_exact : objects:float -> pages:float -> selected:float -> float
(** Yao'77: expected {e fraction} of pages touched when selecting [selected]
    of [objects] records spread uniformly over [pages] pages. Monotone in
    [selected], 0 at 0, 1 at [objects]. *)

val yao_approx : pages:float -> selected:float -> float
(** The exponential approximation used in the paper's Fig 13 rule:
    [1 - exp (-. selected /. pages)]. *)

val find : string -> (Value.t list -> Value.t) option
(** Look up a builtin by name; [None] lets the caller try wrapper-defined
    functions. The returned function raises
    {!Disco_common.Err.Eval_error} on arity mismatch. *)
