(* Static well-formedness checking of a wrapper's registration text. The
   mediator runs it during the registration phase so that mistakes in a
   wrapper's export surface immediately, with a location, rather than as
   evaluation errors in the middle of optimizing some later query. *)

type severity = Error | Warning

type issue = {
  severity : severity;
  where : string;  (* "rule scan(C)", "interface Employee", ... *)
  loc : Ast.pos option;  (* position from the lexer; None for synthesized rules *)
  msg : string;
}

let issue ?loc severity where msg = { severity; where; loc; msg }

let pp_issue ppf i =
  (* With a location we lead with line:col so terminal output is clickable;
     without one (synthesized rules) we keep the historical format. *)
  (match i.loc with
   | Some p -> Fmt.pf ppf "%a: " Ast.pp_pos p
   | None -> ());
  Fmt.pf ppf "%s in %s: %s"
    (match i.severity with Error -> "error" | Warning -> "warning")
    i.where i.msg

(* Functions the mediator provides at evaluation time, beyond {!Builtins}.
   The canonical list lives in {!Builtins} so the evaluator, this checker and
   the static analyzer can't drift apart. *)
let context_functions = Builtins.context_function_names

(* Statistic path tails understood by the estimator. *)
let operand_stats =
  [ "CountObject"; "TotalSize"; "ObjectSize"; "TimeFirst"; "TimeNext"; "TotalTime" ]

let attr_stats = [ "Indexed"; "CountDistinct"; "Min"; "Max" ]

let head_vars (h : Ast.head) : string list =
  let arg = function Ast.Pvar v -> [ v ] | Ast.Pname _ | Ast.Pconst _ -> [] in
  let pred = function
    | Ast.Ppred_var v -> [ v ]
    | Ast.Pcmp (l, _, r) -> arg l @ arg r
  in
  match h with
  | Ast.Hscan c | Ast.Hdedup c -> arg c
  | Ast.Hselect (c, p) -> arg c @ pred p
  | Ast.Hproject (c, a) | Ast.Hsort (c, a) | Ast.Haggregate (c, a) | Ast.Hsubmit (a, c)
    ->
    arg c @ arg a
  | Ast.Hjoin (l, r, p) -> arg l @ arg r @ pred p
  | Ast.Hunion (l, r) -> arg l @ arg r

(* Check one rule: variable-convention references must be bound (by the head
   or by an earlier body assignment); calls must resolve to a builtin, a
   context function or a declared [def]; duplicate assignments are errors;
   paths must end in known statistics. *)
let check_rule ~lets ~defs (r : Ast.rule) : issue list =
  let where = Fmt.str "rule %a" Pp.head r.Ast.head in
  let issues = ref [] in
  (* Expression positions aren't tracked, so issues point at the enclosing
     assignment (or the rule keyword for rule-level issues). *)
  let cur_loc = ref r.Ast.rule_pos in
  let add sev msg = issues := issue ?loc:!cur_loc sev where msg :: !issues in
  let bound = ref (head_vars r.Ast.head) in
  let is_bound name =
    List.mem name !bound || List.mem name lets
    || Option.is_some (Ast.cost_var_of_name name)
  in
  let rec check_expr (e : Ast.expr) =
    match e with
    | Ast.Num _ | Ast.Str _ -> ()
    | Ast.Neg e -> check_expr e
    | Ast.Binop (_, a, b) ->
      check_expr a;
      check_expr b
    | Ast.Call (fn, args) ->
      if
        not
          (List.mem fn defs || List.mem fn context_functions
          || Option.is_some (Builtins.find fn))
      then add Error (Fmt.str "unknown function %S" fn);
      List.iter check_expr args
    | Ast.Ref [ x ] ->
      (* a bare capital-letter identifier is a variable by convention and
         must be bound; other names may be collections or attributes *)
      if Ast.is_variable_name x && not (is_bound x) then
        add Error (Fmt.str "unbound variable %S" x)
    | Ast.Ref (x :: rest) ->
      if Ast.is_variable_name x && not (is_bound x) then
        add Error (Fmt.str "unbound variable %S in path" x);
      (match List.rev rest with
       | last :: _
         when not (List.mem last operand_stats || List.mem last attr_stats) ->
         add Warning
           (Fmt.str "path ends in %S, which is not a known statistic" last)
       | _ -> ())
    | Ast.Ref [] -> add Error "empty reference"
  in
  let assigned = ref [] in
  List.iter
    (fun (target, e) ->
      let name =
        match target with Ast.Cost v -> Ast.cost_var_name v | Ast.Local n -> n
      in
      (cur_loc :=
         match Ast.target_pos r name with
         | Some _ as p -> p
         | None -> r.Ast.rule_pos);
      if List.mem name !assigned then
        add Error (Fmt.str "duplicate assignment to %S" name);
      assigned := name :: !assigned;
      check_expr e;
      bound := name :: !bound)
    r.Ast.body;
  cur_loc := r.Ast.rule_pos;
  if r.Ast.body = [] then add Warning "rule has an empty body";
  List.rev !issues

let check_interface ~declared (i : Ast.interface_decl) : issue list =
  let where = "interface " ^ i.Ast.iface_name in
  let issues = ref [] in
  let add sev msg = issues := issue sev where msg :: !issues in
  let attrs =
    List.filter_map
      (function Ast.Attr_decl (_, n) -> Some n | _ -> None)
      i.Ast.members
  in
  let rec dup = function
    | [] -> None
    | a :: rest -> if List.mem a rest then Some a else dup rest
  in
  (match dup attrs with
   | Some a -> add Error (Fmt.str "duplicate attribute %S" a)
   | None -> ());
  (match i.Ast.iface_parent with
   | Some p when not (List.mem p declared) ->
     add Error (Fmt.str "parent interface %S is not declared before %s" p i.Ast.iface_name)
   | _ -> ());
  List.iter
    (function
      | Ast.Attr_stats { attr; _ }
        when (not (List.mem attr attrs)) && i.Ast.iface_parent = None ->
        add Error (Fmt.str "cardinality for undeclared attribute %S" attr)
      | _ -> ())
    i.Ast.members;
  if
    not
      (List.exists (function Ast.Extent_decl _ -> true | _ -> false) i.Ast.members)
  then add Warning "no extent cardinality exported (standard values will be used)";
  List.rev !issues

let known_operators =
  [ "scan"; "select"; "project"; "sort"; "join"; "union"; "dedup"; "aggregate";
    "submit" ]

(* Check a whole source declaration. Returns all issues, errors first. *)
let check_source (s : Ast.source_decl) : issue list =
  let lets =
    List.filter_map (function Ast.Let (n, _) -> Some n | _ -> None) s.Ast.items
  in
  let defs =
    List.filter_map (function Ast.Def (n, _, _) -> Some n | _ -> None) s.Ast.items
  in
  let issues = ref [] in
  let declared = ref [] in
  List.iter
    (fun item ->
      match item with
      | Ast.Interface i ->
        issues := !issues @ check_interface ~declared:!declared i;
        issues
        := !issues
           @ List.concat_map
               (function Ast.Iface_rule r -> check_rule ~lets ~defs r | _ -> [])
               i.Ast.members;
        declared := i.Ast.iface_name :: !declared
      | Ast.Toplevel_rule r -> issues := !issues @ check_rule ~lets ~defs r
      | Ast.Capabilities ops ->
        List.iter
          (fun op ->
            if not (List.mem op known_operators) then
              issues :=
                !issues
                @ [ issue Warning "capabilities" (Fmt.str "unknown operator %S" op) ])
          ops
      | Ast.Let _ | Ast.Def _ -> ())
    s.Ast.items;
  let errors, warnings =
    List.partition (fun i -> i.severity = Error) !issues
  in
  errors @ warnings

let errors issues = List.filter (fun i -> i.severity = Error) issues
