(* Pure builtin functions available in every cost formula. Functions that
   need mediator context (catalog statistics, bound predicates) — such as
   [sel] — are provided by the cost-model registry, not here. *)

open Disco_common

let yao_exact ~objects:n ~pages:m ~selected:k =
  (* Yao'77: expected fraction of pages touched when selecting k of n records
     spread uniformly over m pages. 1 - prod_{i=1..k} (n - n/m - i + 1) / (n - i + 1) *)
  if m <= 0. || n <= 0. then 0.
  else if k <= 0. then 0.
  else if k >= n then 1.
  else begin
    let per_page = n /. m in
    let k = Float.min k n in
    let steps = int_of_float (Float.min k 100_000.) in
    let ratio = ref 1.0 in
    (for i = 1 to steps do
       let i = float_of_int i in
       let num = n -. per_page -. i +. 1. and den = n -. i +. 1. in
       if num <= 0. then ratio := 0. else ratio := !ratio *. (num /. den)
     done);
    1. -. !ratio
  end

(* The exponential approximation used in the paper's Fig 13 rule:
   1 - exp(-k / m) where k objects are selected from a collection stored on m
   pages. *)
let yao_approx ~pages:m ~selected:k =
  if m <= 0. then 0. else 1. -. exp (-.k /. m)

(* Canonical name lists. [names] must stay in sync with [find] below (a test
   resolves every entry); [context_function_names] is the single source of
   truth for the functions the estimator provides at evaluation time — both
   [Check] and the static analyzer consume it. *)
let names =
  [ "exp"; "ln"; "log2"; "sqrt"; "ceil"; "floor"; "abs"; "pow"; "min"; "max";
    "if"; "yao"; "yaoapprox" ]

let context_function_names =
  [ "sel"; "selectivity"; "indexed"; "rindexed"; "adtcost"; "adjust"; "nnames";
    "groupcard" ]

let arity_error name n =
  raise (Err.Eval_error (Fmt.str "builtin %s: wrong number of arguments (%d)" name n))

(* Look up a pure builtin; returns [None] for unknown names so the caller can
   try wrapper-defined functions. *)
let find name : (Value.t list -> Value.t) option =
  let f1 name fn =
    Some
      (function
        | [ a ] -> Value.num (fn (Value.to_num a))
        | args -> arity_error name (List.length args))
  in
  let f2 name fn =
    Some
      (function
        | [ a; b ] -> Value.num (fn (Value.to_num a) (Value.to_num b))
        | args -> arity_error name (List.length args))
  in
  match name with
  | "exp" -> f1 name exp
  | "ln" -> f1 name log
  | "log2" -> f1 name (fun x -> log x /. log 2.)
  | "sqrt" -> f1 name sqrt
  | "ceil" -> f1 name ceil
  | "floor" -> f1 name floor
  | "abs" -> f1 name abs_float
  | "pow" -> f2 name Float.pow
  | "min" ->
    Some
      (function
        | [] -> arity_error name 0
        | args -> Value.num (List.fold_left (fun acc v -> Float.min acc (Value.to_num v)) infinity args))
  | "max" ->
    Some
      (function
        | [] -> arity_error name 0
        | args ->
          Value.num
            (List.fold_left (fun acc v -> Float.max acc (Value.to_num v)) neg_infinity args))
  | "if" ->
    Some
      (function
        | [ c; t; e ] -> if Value.to_num c <> 0. then t else e
        | args -> arity_error name (List.length args))
  | "yao" ->
    (* yao(objects, pages, selected): exact Yao'77 page-fetch fraction *)
    Some
      (function
        | [ n; m; k ] ->
          Value.num
            (yao_exact ~objects:(Value.to_num n) ~pages:(Value.to_num m)
               ~selected:(Value.to_num k))
        | args -> arity_error name (List.length args))
  | "yaoapprox" ->
    Some
      (function
        | [ m; k ] ->
          Value.num (yao_approx ~pages:(Value.to_num m) ~selected:(Value.to_num k))
        | args -> arity_error name (List.length args))
  | _ -> None
