(** Flat bytecode for cost formulas — the fast backend behind the paper's
    "semi-compiled bytecode" shipping (§2.4).

    A formula compiles once, at registration time, into a flat instruction
    array executed over explicit operand stacks: an unboxed float stack for
    arithmetic (the numeric fast path) and a {!Value.t} stack for positions
    where the representation is observable (function arguments, results).
    Statistics references with no dynamic path segment are pre-resolved
    into {e slots} cached per rule and invalidated by the registry
    generation stamp; everything else resolves dynamically through the
    estimator, memoized per rule-instance evaluation (see {!ctx}). *)

type instr =
  | NPush of float
  | NSlot of int
  | NRef of int
  | NCall of string * int
  | NNeg
  | NAdd
  | NSub
  | NMul
  | NDiv
  | NLoad of int
  | NStore of int
  | NOfV
  | NWrap
  | VPush of Value.t
  | VSlot of int
  | VRef of int
  | VCall of string * int

type scratch
(** Operand stacks sized for one program, owned by it and reused across its
    evaluations; re-entrant evaluation falls back to a fresh allocation. *)

(** A compiled formula. [code] is the symbolic form (disassembly, fast
    paths); [insns] is the packed executable form — one int per
    instruction, opcode in the low five bits — that the dispatch loop runs
    on, with the literal pools alongside. *)
type program = private {
  code : instr array;
  insns : int array;
  nums : float array;
  vals : Value.t array;
  names : string array;
  fdepth : int;
  vdepth : int;
  ntmps : int;
  scratch : scratch;
  busy : bool Atomic.t;
}

(** {1 Slot tables}

    The per-rule table of pre-resolvable reference paths, shared by all
    formulas of a rule body. Resolved values are cached per evaluation
    source and stamped with the {!Disco_core.Registry.generation} under
    which they were resolved; a model write bumps the generation and the
    next evaluation re-resolves instead of serving stale statistics. *)

type bank = {
  bvals : Value.t option array;  (** resolved values ([None] = unresolved) *)
  bnums : float array;           (** pre-coerced numeric mirror *)
  bstate : Bytes.t;
      (** ['\000'] unresolved, ['\001'] numeric (read [bnums]), ['\002']
          resolved but non-numeric *)
}
(** One resolution-cache column: resolved values plus an unboxed float
    mirror so numeric reads are a plain array load on the hot path. Used
    both for slot caches (per (generation, source)) and for the
    per-rule-instance dynamic-reference memo. *)

val empty_bank : bank
(** The shared empty column (rules with no slots / no dynamic refs). *)

val new_bank : int -> bank
(** A fresh all-unresolved column of the given width. *)

val clear_bank : bank -> unit
(** Reset every entry to unresolved (for reusing a memo across passes). *)

type slots
(** The cache is sharded: shard [i] belongs to domain-pool slot [i]
    (shard 0 is the sequential path), so each shard's columns are filled
    and read by a single domain and need no locking. Generation stamping
    is per shard. *)

val max_shards : int
(** Number of shards per table (64, matching the domain-pool clamp). *)

val empty_slots : unit -> slots
(** A fresh table with no slots (closure-backend rules, constant rules). *)

val slot_count : slots -> int

val slot_path : slots -> int -> string list

val dyn_count : slots -> int
(** Number of distinct dynamic reference paths across the rule body. *)

val dyn_path : slots -> int -> string list

val dyn_volatile : slots -> int -> bool
(** Whether {!dyn_path}[ i] starts with a body-target or cost-variable name.
    Such paths may resolve differently as body assignments complete, so they
    are excluded from the per-instance dynamic-reference memo. *)

val slot_cache : ?shard:int -> slots -> generation:int -> source:string -> bank
(** The cache column for [source] in shard [shard] (default [0]), dropping
    the shard's cached values first if its stamp differs from [generation].
    Entries are unresolved until the [resolve] callback fills them on first
    touch. *)

(** {1 Compilation} *)

type builder
(** Accumulates the slot table across all formulas of one rule body. *)

val new_builder : unit -> builder

val finish : builder -> slots

val compile :
  builder ->
  dynamic_first:(string -> bool) ->
  ?volatile_first:(string -> bool) ->
  head_var:(string -> bool) ->
  Ast.expr ->
  program
(** Compile one formula. [dynamic_first] must hold for reference first
    segments that resolve per evaluation (head variables, earlier body
    locals, cost variable names); [head_var] for names bound by head
    matching, which are substituted into later path segments at resolution
    time. References that pass both checks become slots. Numeric-context
    common subexpressions are computed once and reused through a temporary
    bank, preserving the reference backend's evaluation-order effects. *)

val const_program : float -> program
(** A program returning [Vnum f] (query-scope historical rules). *)

(** {1 Execution} *)

type ctx = {
  mutable bank : bank;
      (** slot cache column for this evaluation; mutable so a long-lived
          per-instance ctx is repinned to the current generation's column
          at the start of each estimation pass instead of reallocated *)
  dmemo : bank;
      (** per-rule-instance dynamic-reference memo, one entry per
          {!dyn_path}. Each distinct non-volatile path resolves once per
          instance (resolution is deterministic there — bindings are fixed,
          child cost variables are memoized, and anything
          assignment-dependent is classified volatile and never cached),
          where the closure backend re-resolves every occurrence. The
          caller drops it when the registry generation moves, the same
          invalidation contract as the slot banks. *)
  slots : slots;
  resolve : string list -> Value.t;  (** full resolution of one path *)
  call : string -> Value.t list -> Value.t;
}

val exec : program -> ctx -> Value.t
(** Run the program. Raises {!Err.Eval_error} exactly where the closure
    backend does (division by zero, non-numeric coercion, resolution
    failures surfaced by [ctx]). Re-entrant: [ctx] callbacks may evaluate
    other programs. *)

val instr_count : program -> int

val pp : program Fmt.t
(** Disassembly, for debugging and tests. *)
