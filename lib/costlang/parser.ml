(* Recursive-descent parser for the cost communication language. The concrete
   grammar follows Fig 9 of the paper, extended with the full operator set of
   the mediator algebra, [let]/[def] declarations, and the IDL-subset
   interface syntax of Figs 3-5. *)

open Disco_common
open Disco_algebra
open Disco_catalog

type cursor = {
  what : string;
  toks : Lexer.spanned array;
  mutable i : int;
}

let peek c = c.toks.(c.i).tok

let error_at c msg =
  let s = c.toks.(c.i) in
  Err.parse_error ~what:c.what ~line:s.Lexer.line ~col:s.Lexer.col msg

let advance c = if c.i < Array.length c.toks - 1 then c.i <- c.i + 1

let eat c tok =
  if peek c = tok then advance c
  else error_at c (Fmt.str "expected %a, found %a" Lexer.pp_token tok Lexer.pp_token (peek c))

let ident c =
  match peek c with
  | IDENT s ->
    advance c;
    s
  | t -> error_at c (Fmt.str "expected identifier, found %a" Lexer.pp_token t)

let keyword c kw =
  match peek c with
  | IDENT s when String.equal s kw -> advance c
  | t -> error_at c (Fmt.str "expected keyword %S, found %a" kw Lexer.pp_token t)

let number c =
  match peek c with
  | NUMBER f ->
    advance c;
    f
  | MINUS ->
    advance c;
    (match peek c with
     | NUMBER f ->
       advance c;
       -.f
     | t -> error_at c (Fmt.str "expected number, found %a" Lexer.pp_token t))
  | t -> error_at c (Fmt.str "expected number, found %a" Lexer.pp_token t)

(* A constant literal: number, string, true or false. *)
let constant c : Constant.t =
  match peek c with
  | NUMBER f ->
    advance c;
    if Float.is_integer f then Constant.Int (int_of_float f) else Constant.Float f
  | MINUS ->
    let f = number c in
    if Float.is_integer f then Constant.Int (int_of_float f) else Constant.Float f
  | STRING s ->
    advance c;
    Constant.String s
  | IDENT "true" ->
    advance c;
    Constant.Bool true
  | IDENT "false" ->
    advance c;
    Constant.Bool false
  | IDENT "null" ->
    advance c;
    Constant.Null
  | t -> error_at c (Fmt.str "expected constant, found %a" Lexer.pp_token t)

(* --- Expressions ------------------------------------------------------- *)

let rec expr c : Ast.expr =
  let lhs = term c in
  let rec loop lhs =
    match peek c with
    | PLUS ->
      advance c;
      loop (Ast.Binop (Ast.Add, lhs, term c))
    | MINUS ->
      advance c;
      loop (Ast.Binop (Ast.Sub, lhs, term c))
    | _ -> lhs
  in
  loop lhs

and term c : Ast.expr =
  let lhs = factor c in
  let rec loop lhs =
    match peek c with
    | STAR ->
      advance c;
      loop (Ast.Binop (Ast.Mul, lhs, factor c))
    | SLASH ->
      advance c;
      loop (Ast.Binop (Ast.Div, lhs, factor c))
    | _ -> lhs
  in
  loop lhs

and factor c : Ast.expr =
  match peek c with
  | NUMBER f ->
    advance c;
    Ast.Num f
  | STRING s ->
    advance c;
    Ast.Str s
  | MINUS ->
    advance c;
    Ast.Neg (factor c)
  | LPAREN ->
    advance c;
    let e = expr c in
    eat c RPAREN;
    e
  | IDENT _ ->
    let name = ident c in
    (match peek c with
     | LPAREN ->
       advance c;
       let args =
         if peek c = RPAREN then []
         else
           let rec go acc =
             let e = expr c in
             match peek c with
             | COMMA ->
               advance c;
               go (e :: acc)
             | _ -> List.rev (e :: acc)
           in
           go []
       in
       eat c RPAREN;
       Ast.Call (name, args)
     | DOT ->
       let rec path acc =
         match peek c with
         | DOT ->
           advance c;
           path (ident c :: acc)
         | _ -> List.rev acc
       in
       Ast.Ref (path [ name ])
     | _ -> Ast.Ref [ name ])
  | t -> error_at c (Fmt.str "expected expression, found %a" Lexer.pp_token t)

(* --- Rule heads -------------------------------------------------------- *)

(* An argument in a head: identifier (variable or literal name, possibly
   dotted as in x1.id), number, or string. *)
let head_arg c : Ast.arg_pat =
  match peek c with
  | IDENT ("true" | "false" | "null") | NUMBER _ | STRING _ | MINUS -> Ast.Pconst (constant c)
  | IDENT _ ->
    let name = ident c in
    if peek c = DOT then begin
      advance c;
      let rest = ident c in
      Ast.Pname (name ^ "." ^ rest)
    end
    else Ast.arg_pat_of_ident name
  | t -> error_at c (Fmt.str "expected head argument, found %a" Lexer.pp_token t)

let cmp_op c : Pred.cmp option =
  match peek c with
  | EQ ->
    advance c;
    Some Pred.Eq
  | NE ->
    advance c;
    Some Pred.Ne
  | LT ->
    advance c;
    Some Pred.Lt
  | LE ->
    advance c;
    Some Pred.Le
  | GT ->
    advance c;
    Some Pred.Gt
  | GE ->
    advance c;
    Some Pred.Ge
  | _ -> None

(* A predicate pattern: either a lone variable [P] or [arg op arg]. *)
let pred_pat c : Ast.pred_pat =
  let lhs = head_arg c in
  match cmp_op c with
  | Some op -> Ast.Pcmp (lhs, op, head_arg c)
  | None ->
    (match lhs with
     | Ast.Pvar v -> Ast.Ppred_var v
     | Ast.Pname n ->
       error_at c
         (Fmt.str
            "lone predicate pattern %S is not a variable (variables are a single \
             capital letter, optionally followed by digits)"
            n)
     | Ast.Pconst _ -> error_at c "a constant is not a valid predicate pattern")

let head c : Ast.head =
  let op = ident c in
  eat c LPAREN;
  let comma () = eat c COMMA in
  let h =
    match op with
    | "scan" -> Ast.Hscan (head_arg c)
    | "select" ->
      let coll = head_arg c in
      comma ();
      Ast.Hselect (coll, pred_pat c)
    | "project" ->
      let coll = head_arg c in
      comma ();
      Ast.Hproject (coll, head_arg c)
    | "sort" ->
      let coll = head_arg c in
      comma ();
      Ast.Hsort (coll, head_arg c)
    | "join" ->
      let l = head_arg c in
      comma ();
      let r = head_arg c in
      comma ();
      Ast.Hjoin (l, r, pred_pat c)
    | "union" ->
      let l = head_arg c in
      comma ();
      Ast.Hunion (l, head_arg c)
    | "dedup" -> Ast.Hdedup (head_arg c)
    | "aggregate" ->
      let coll = head_arg c in
      comma ();
      Ast.Haggregate (coll, head_arg c)
    | "submit" ->
      let w = head_arg c in
      comma ();
      Ast.Hsubmit (w, head_arg c)
    | other -> error_at c (Fmt.str "unknown operator %S in rule head" other)
  in
  eat c RPAREN;
  h

(* --- Rules, interfaces, sources ---------------------------------------- *)

let pos_here c : Ast.pos =
  let s = c.toks.(c.i) in
  { Ast.line = s.Lexer.line; col = s.Lexer.col }

let rule c : Ast.rule =
  let rpos = pos_here c in
  keyword c "rule";
  let h = head c in
  eat c LBRACE;
  let rec assigns acc pos_acc =
    match peek c with
    | RBRACE ->
      advance c;
      (List.rev acc, List.rev pos_acc)
    | IDENT name ->
      let target = Ast.target_of_name name in
      let tpos = pos_here c in
      advance c;
      eat c EQ;
      let e = expr c in
      eat c SEMI;
      assigns ((target, e) :: acc) ((name, tpos) :: pos_acc)
    | t -> error_at c (Fmt.str "expected result assignment or '}', found %a" Lexer.pp_token t)
  in
  let body, body_pos = assigns [] [] in
  { Ast.head = h; body; rule_pos = Some rpos; body_pos }

let schema_ty c =
  match ident c with
  | "long" | "short" | "int" -> Schema.Tint
  | "double" | "float" -> Schema.Tfloat
  | "string" -> Schema.Tstring
  | "boolean" | "bool" -> Schema.Tbool
  | other -> error_at c (Fmt.str "unknown attribute type %S" other)

let bool_lit c =
  match peek c with
  | IDENT "true" ->
    advance c;
    true
  | IDENT "false" ->
    advance c;
    false
  | t -> error_at c (Fmt.str "expected true or false, found %a" Lexer.pp_token t)

let member c : Ast.member =
  match peek c with
  | IDENT "attribute" ->
    advance c;
    let ty = schema_ty c in
    let name = ident c in
    eat c SEMI;
    Ast.Attr_decl (ty, name)
  | IDENT "cardinality" ->
    advance c;
    (match ident c with
     | "extent" ->
       eat c LPAREN;
       let count = number c in
       eat c COMMA;
       let total = number c in
       eat c COMMA;
       let objsize = number c in
       eat c RPAREN;
       eat c SEMI;
       Ast.Extent_decl { count; total; objsize }
     | "attribute" ->
       eat c LPAREN;
       let attr = ident c in
       eat c COMMA;
       let indexed = bool_lit c in
       eat c COMMA;
       let distinct = number c in
       eat c COMMA;
       let min = constant c in
       eat c COMMA;
       let max = constant c in
       eat c RPAREN;
       eat c SEMI;
       Ast.Attr_stats { attr; indexed; distinct; min; max }
     | other ->
       error_at c (Fmt.str "expected 'extent' or 'attribute' after cardinality, got %S" other))
  | IDENT "rule" -> Ast.Iface_rule (rule c)
  | t -> error_at c (Fmt.str "expected interface member, found %a" Lexer.pp_token t)

let interface c : Ast.interface_decl =
  keyword c "interface";
  let name = ident c in
  let parent =
    if peek c = COLON then begin
      advance c;
      Some (ident c)
    end
    else None
  in
  eat c LBRACE;
  let rec members acc =
    if peek c = RBRACE then begin
      advance c;
      List.rev acc
    end
    else members (member c :: acc)
  in
  { Ast.iface_name = name; iface_parent = parent; members = members [] }

let item c : Ast.item =
  match peek c with
  | IDENT "capabilities" ->
    advance c;
    let rec ops acc =
      let op = ident c in
      if peek c = COMMA then begin
        advance c;
        ops (op :: acc)
      end
      else List.rev (op :: acc)
    in
    let caps = ops [] in
    eat c SEMI;
    Ast.Capabilities caps
  | IDENT "let" ->
    advance c;
    let name = ident c in
    eat c EQ;
    let e = expr c in
    eat c SEMI;
    Ast.Let (name, e)
  | IDENT "def" ->
    advance c;
    let name = ident c in
    eat c LPAREN;
    let rec params acc =
      match peek c with
      | RPAREN ->
        advance c;
        List.rev acc
      | COMMA ->
        advance c;
        params acc
      | IDENT _ -> params (ident c :: acc)
      | t -> error_at c (Fmt.str "expected parameter name, found %a" Lexer.pp_token t)
    in
    let ps = params [] in
    eat c EQ;
    let e = expr c in
    eat c SEMI;
    Ast.Def (name, ps, e)
  | IDENT "interface" -> Ast.Interface (interface c)
  | IDENT "rule" -> Ast.Toplevel_rule (rule c)
  | t -> error_at c (Fmt.str "expected let, def, interface or rule, found %a" Lexer.pp_token t)

let source c : Ast.source_decl =
  keyword c "source";
  let name = ident c in
  eat c LBRACE;
  let rec items acc =
    if peek c = RBRACE then begin
      advance c;
      List.rev acc
    end
    else items (item c :: acc)
  in
  { Ast.source_name = name; items = items [] }

let cursor_of ~what text =
  { what; toks = Array.of_list (Lexer.tokenize ~what text); i = 0 }

(* Entry points. *)

let parse_source ~what text : Ast.source_decl =
  let c = cursor_of ~what text in
  let s = source c in
  eat c EOF;
  s

(* A sequence of items without the [source name { }] wrapper; the caller
   supplies the source name. Used for registering extra rules at runtime. *)
let parse_items ~what text : Ast.item list =
  let c = cursor_of ~what text in
  let rec items acc = if peek c = EOF then List.rev acc else items (item c :: acc) in
  items []

let parse_rule ~what text : Ast.rule =
  let c = cursor_of ~what text in
  let r = rule c in
  eat c EOF;
  r

let parse_expr ~what text : Ast.expr =
  let c = cursor_of ~what text in
  let e = expr c in
  eat c EOF;
  e
