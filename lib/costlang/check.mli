(** Static well-formedness checking of a wrapper's registration text. The
    mediator runs it during the registration phase so mistakes in an export
    surface immediately (with a location) rather than as evaluation errors in
    the middle of optimizing a later query.

    Errors: unbound head variables referenced in formulas, unknown functions,
    duplicate assignments, duplicate attributes, cardinality sections for
    undeclared attributes, parents declared after their sub-interfaces.
    Warnings: missing extent cardinalities (defaults apply), unknown
    statistic names in paths, unknown capability operators, empty rule
    bodies. *)

type severity = Error | Warning

type issue = {
  severity : severity;
  where : string;  (** "rule scan(C)", "interface Employee", ... *)
  loc : Ast.pos option;
      (** position threaded from the lexer; [None] for synthesized rules *)
  msg : string;
}

val issue : ?loc:Ast.pos -> severity -> string -> string -> issue

val pp_issue : Format.formatter -> issue -> unit
(** Prints ["line:col: severity in where: msg"] when a location is known and
    falls back to the historical ["severity in where: msg"] otherwise. *)

val context_functions : string list
(** Functions the mediator provides at evaluation time beyond {!Builtins}
    ([sel], [indexed], [adtcost], ...). Equal to
    {!Builtins.context_function_names}. *)

val known_operators : string list
(** Operator names valid in rule heads and capability lists. *)

val check_rule : lets:string list -> defs:string list -> Ast.rule -> issue list

val check_interface : declared:string list -> Ast.interface_decl -> issue list

val check_source : Ast.source_decl -> issue list
(** All issues of a source declaration, errors first. *)

val errors : issue list -> issue list
