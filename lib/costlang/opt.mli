(** Registration-time optimizer over cost-formula ASTs, run before bytecode
    compilation ({!Vm}). Every rewrite is observationally equivalent to the
    closure reference backend ({!Compile}): identical values (bit-for-bit)
    and identical [Eval_error] behavior, as asserted by the differential
    suite in [test/test_vm.ml]. *)

val never_raises : Ast.expr -> bool
(** [e] can neither raise nor evaluate to a non-numeric value: literals and
    division-free arithmetic over them. *)

val simplify : ?num:bool -> Ast.expr -> Ast.expr
(** Constant folding plus algebraic simplification ([x*1], [x+0], [0*x] on
    provably non-raising operands). [num] marks numeric context, where the
    consumer coerces with [Value.to_num] and identity rewrites that change
    the value representation are allowed; the default ([false]) is
    representation-preserving. [x / 0] is never folded — it must raise like
    the reference backend. *)

val inline_defs :
  lookup:(string -> (string list * Ast.expr) option) -> Ast.expr -> Ast.expr
(** Beta-reduce calls to wrapper-defined functions whose definition [lookup]
    returns. Only calls with atomic arguments (literals and references) are
    inlined, and only when every non-literal argument is used at least once
    in the body, so dropped or duplicated evaluations cannot change
    behavior. Recursive cycles and arity mismatches are left for the runtime
    [apply_def] path. *)

val pipeline :
  lookup:(string -> (string list * Ast.expr) option) -> Ast.expr -> Ast.expr
(** The full registration-time pipeline for one formula: [inline_defs] then
    [simplify]. *)
