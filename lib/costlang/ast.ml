(* Abstract syntax of the cost communication language (paper §3, Figs 5 and 9).

   A wrapper exports a [source] declaration containing interface descriptions
   (IDL subset + cardinality section) and cost rules. Rules may appear inside
   an interface (collection scope) or at top level (wrapper or predicate
   scope). [let] binds wrapper parameters such as PageSize; [def] declares
   wrapper-defined functions usable in formulas (the paper's "ad-hoc function
   defined by the wrapper implementor", e.g. selectivity with histograms). *)

open Disco_common
open Disco_algebra
open Disco_catalog

(* Source location of a syntactic element, threaded from the lexer. [None]
   positions mark rules synthesized programmatically rather than parsed. *)
type pos = { line : int; col : int }

let pp_pos ppf p = Format.fprintf ppf "%d:%d" p.line p.col

type binop = Add | Sub | Mul | Div

type expr =
  | Num of float
  | Str of string                 (* string literal, only valid as an argument *)
  | Ref of string list            (* path: C, C.CountObject, Employee.salary.Min *)
  | Neg of expr
  | Binop of binop * expr * expr
  | Call of string * expr list

(* The five result variables of the grammar in Fig 9. *)
type cost_var = Total_time | Time_first | Time_next | Count_object | Total_size

let cost_var_name = function
  | Total_time -> "TotalTime"
  | Time_first -> "TimeFirst"
  | Time_next -> "TimeNext"
  | Count_object -> "CountObject"
  | Total_size -> "TotalSize"

let cost_var_of_name = function
  | "TotalTime" -> Some Total_time
  | "TimeFirst" -> Some Time_first
  | "TimeNext" -> Some Time_next
  | "CountObject" -> Some Count_object
  | "TotalSize" -> Some Total_size
  | _ -> None

let all_cost_vars = [ Total_time; Time_first; Time_next; Count_object; Total_size ]

(* Head argument patterns. Following the paper's examples (Fig 8: [select(C,
   A = V)] vs [scan(employee)]), an identifier is a free variable iff it is a
   single capital letter optionally followed by digits; anything else is a
   literal name. *)
type arg_pat =
  | Pvar of string             (* free variable, binds during matching *)
  | Pname of string            (* literal collection or attribute name *)
  | Pconst of Constant.t       (* literal constant in predicate position *)

type pred_pat =
  | Ppred_var of string                      (* select(C, P): any predicate *)
  | Pcmp of arg_pat * Pred.cmp * arg_pat     (* select(C, A = V), join(.., A = B) *)

type head =
  | Hscan of arg_pat
  | Hselect of arg_pat * pred_pat
  | Hproject of arg_pat * arg_pat            (* second arg binds the attr list *)
  | Hsort of arg_pat * arg_pat
  | Hjoin of arg_pat * arg_pat * pred_pat
  | Hunion of arg_pat * arg_pat
  | Hdedup of arg_pat
  | Haggregate of arg_pat * arg_pat          (* second arg binds the grouping *)
  | Hsubmit of arg_pat * arg_pat             (* submit(W, C) *)

let head_operator = function
  | Hscan _ -> "scan"
  | Hselect _ -> "select"
  | Hproject _ -> "project"
  | Hsort _ -> "sort"
  | Hjoin _ -> "join"
  | Hunion _ -> "union"
  | Hdedup _ -> "dedup"
  | Haggregate _ -> "aggregate"
  | Hsubmit _ -> "submit"

(* Assignment targets in a rule body. Besides the five result variables, a
   body may bind local intermediates used by later formulas — the paper's
   Fig 13 computes [CountPage] before using it in [TotalTime]. *)
type target = Cost of cost_var | Local of string

let target_of_name name =
  match cost_var_of_name name with Some v -> Cost v | None -> Local name

let target_name = function Cost v -> cost_var_name v | Local name -> name

(* Names bound by matching a head pattern: the free variables of its operand,
   attribute and predicate positions. At evaluation time exactly these names
   resolve through the match bindings, so a formula reference whose first
   segment is one of them can never be pre-resolved at registration. *)
let head_var_names (h : head) : string list =
  let arg = function Pvar v -> [ v ] | Pname _ | Pconst _ -> [] in
  let pred = function
    | Ppred_var v -> [ v ]
    | Pcmp (l, _, r) -> arg l @ arg r
  in
  match h with
  | Hscan c | Hdedup c -> arg c
  | Hselect (c, p) -> arg c @ pred p
  | Hproject (c, a) | Hsort (c, a) | Haggregate (c, a) | Hsubmit (c, a)
  | Hunion (c, a) ->
    arg c @ arg a
  | Hjoin (l, r, p) -> arg l @ arg r @ pred p

type rule = {
  head : head;
  body : (target * expr) list;  (* in declaration order; scoping is sequential *)
  rule_pos : pos option;          (* position of the [rule] keyword *)
  body_pos : (string * pos) list; (* assignment-target name -> position *)
}

let mk_rule ?pos ?(body_pos = []) head body =
  { head; body; rule_pos = pos; body_pos }

let target_pos r name = List.assoc_opt name r.body_pos

(* Positions don't participate in semantic identity: two parses of the same
   text at different offsets denote the same rule. Comparisons (pp/parse
   round-trips, differential tests) go through the erasers below. *)
let erase_rule_pos r = { r with rule_pos = None; body_pos = [] }

(* Cost variables a rule provides formulas for. *)
let rule_provides r =
  List.filter_map (function Cost v, _ -> Some v | Local _, _ -> None) r.body

type member =
  | Attr_decl of Schema.ty * string
  | Extent_decl of { count : float; total : float; objsize : float }
  | Attr_stats of {
      attr : string;
      indexed : bool;
      distinct : float;
      min : Constant.t;
      max : Constant.t;
    }
  | Iface_rule of rule

type interface_decl = {
  iface_name : string;
  iface_parent : string option;  (* single inheritance: [interface B : A] *)
  members : member list;
}

type item =
  | Let of string * expr
  | Def of string * string list * expr
  | Interface of interface_decl
  | Toplevel_rule of rule
  | Capabilities of string list
      (* operators the wrapper can execute (paper §2.1); absent = all *)

type source_decl = { source_name : string; items : item list }

let erase_source_pos (s : source_decl) =
  let member = function
    | Iface_rule r -> Iface_rule (erase_rule_pos r)
    | m -> m
  in
  let item = function
    | Interface i -> Interface { i with members = List.map member i.members }
    | Toplevel_rule r -> Toplevel_rule (erase_rule_pos r)
    | it -> it
  in
  { s with items = List.map item s.items }

(* Free-variable convention: single capital letter, optional digits. *)
let is_variable_name s =
  String.length s >= 1
  && s.[0] >= 'A'
  && s.[0] <= 'Z'
  && (String.length s = 1
      || String.for_all (fun c -> c >= '0' && c <= '9')
           (String.sub s 1 (String.length s - 1)))

let arg_pat_of_ident s = if is_variable_name s then Pvar s else Pname s

(* Syntactic helpers for building rules programmatically (used by tests). *)
let rules_of_source (s : source_decl) : (string option * rule) list =
  List.concat_map
    (function
      | Toplevel_rule r -> [ (None, r) ]
      | Interface i ->
        List.filter_map
          (function Iface_rule r -> Some (Some i.iface_name, r) | _ -> None)
          i.members
      | Let _ | Def _ | Capabilities _ -> [])
    s.items
