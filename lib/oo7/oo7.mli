(** The OO7 benchmark database [CDN93], as used in the paper's validation
    (§5): AtomicParts with the exact parameters of the index-scan experiment
    — 70000 objects of 56 bytes on 1000 pages (4096-byte pages, 96 % fill),
    uniformly distributed ids, an unclustered index on [id] — plus the
    CompositeParts / Connections / Documents structure around them.

    Ids are assigned uniformly and rows are shuffled before paging, so an
    index scan in id order touches pages in random order: the measured page
    count follows Yao's formula — the non-linearity of the paper's
    Figure 12. *)

open Disco_catalog
open Disco_storage

type config = {
  atomic_parts : int;
  composite_parts : int;       (** AtomicPart.partOf fan-in *)
  connections_per_part : int;
  documents : int;
  seed : int;
}

val paper_config : config
(** The paper's §5 parameters (70000 atomic parts). *)

val small_config : config
(** A reduced configuration for tests. *)

val large_config : config
(** Scaled-up database for throughput benchmarks: ~1M atomic parts, same
    distributions as {!paper_config}. *)

val scale_from_env : unit -> config
(** Benchmark scale from [DISCO_OO7_SCALE]: ["large"], ["paper"], ["small"]
    or an explicit atomic-part count; {!paper_config} when unset. *)

val atomic_part_schema : Schema.collection
val composite_part_schema : Schema.collection
val connection_schema : Schema.collection
val document_schema : Schema.collection

val make_tables : config -> Table.t list
(** AtomicPart, CompositePart (clustered on id), Connection, Document —
    deterministic for a given config. *)

val yao_rules : string
(** The Yao-based cost rules of the paper's Fig 13, generalized over the
    collection, plus scan / index-join / submit rules. *)

val make_source :
  ?config:config -> ?with_rules:bool -> ?buffer_pages:int -> unit ->
  Disco_wrapper.Wrapper.t
(** The ObjectStore-backed OO7 source. [with_rules] (default true) controls
    whether the wrapper exports the Yao cost rules (the paper's proposal) or
    only statistics (the baseline calibrating approach of [GST96]). *)

val cold_cache : Disco_wrapper.Wrapper.t -> unit
(** Reset the wrapper's buffer pool between measurements. *)

val queries : config -> (string * Disco_algebra.Plan.t) list
(** The OO7 query workload [CDN93] (the subset expressible in the mediator
    algebra, scaled to the configured database): exact-match and range index
    scans, path joins, and a full scan. *)
