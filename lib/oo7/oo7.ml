(* The OO7 benchmark database [CDN93], as used in the paper's validation
   (§5): AtomicParts with the exact parameters of the index-scan experiment —
   70000 objects of 56 bytes on 1000 pages (4096-byte pages, 96 % fill),
   uniformly distributed ids, an unclustered index on [id] — plus the
   CompositeParts / Connections / Documents structure around them.

   Ids are assigned uniformly and the rows are shuffled before paging, so an
   index scan in id order touches pages in random order: the measured page
   count follows Yao's formula, which is the non-linearity Figure 12 of the
   paper demonstrates. *)

open Disco_common
open Disco_catalog
open Disco_storage
open Disco_exec

type config = {
  atomic_parts : int;
  composite_parts : int;      (* AtomicPart.partOf fan-in *)
  connections_per_part : int; (* outgoing connections per atomic part *)
  documents : int;
  seed : int;
}

(* The paper's §5 parameters. *)
let paper_config =
  { atomic_parts = 70_000;
    composite_parts = 500;
    connections_per_part = 3;
    documents = 500;
    seed = 7 }

(* A small configuration for tests. *)
let small_config =
  { atomic_parts = 2_000;
    composite_parts = 40;
    connections_per_part = 3;
    documents = 40;
    seed = 7 }

(* Scaled-up database for throughput benchmarks: ~1M atomic parts (the
   paper's parameters times ~14), same distributions. Big enough that the
   per-row interpretation overhead dominates a scan, which is what the
   batched engine attacks. *)
let large_config =
  { atomic_parts = 1_000_000;
    composite_parts = 5_000;
    connections_per_part = 3;
    documents = 5_000;
    seed = 7 }

(* Pick the benchmark scale from [DISCO_OO7_SCALE]: "large", "paper",
   "small", or an explicit atomic-part count (other sizes scaled
   proportionally to the paper config). Unset means [paper_config]. *)
let scale_from_env () =
  match Option.map String.trim (Sys.getenv_opt "DISCO_OO7_SCALE") with
  | Some ("large" | "LARGE") -> large_config
  | Some ("small" | "SMALL") -> small_config
  | Some ("paper" | "PAPER") -> paper_config
  | Some s ->
    (match int_of_string_opt s with
     | Some n when n > 0 ->
       let scale base = max 1 (base * n / paper_config.atomic_parts) in
       { paper_config with
         atomic_parts = n;
         composite_parts = scale paper_config.composite_parts;
         documents = scale paper_config.documents }
     | _ -> paper_config)
  | None -> paper_config

let atomic_part_schema =
  Schema.collection "AtomicPart"
    [ ("id", Schema.Tint);
      ("buildDate", Schema.Tint);
      ("x", Schema.Tint);
      ("y", Schema.Tint);
      ("partOf", Schema.Tint) ]

let composite_part_schema =
  Schema.collection "CompositePart"
    [ ("id", Schema.Tint); ("buildDate", Schema.Tint); ("docId", Schema.Tint) ]

let connection_schema =
  Schema.collection "Connection"
    [ ("fromId", Schema.Tint); ("toId", Schema.Tint); ("length", Schema.Tint) ]

let document_schema =
  Schema.collection "Document"
    [ ("id", Schema.Tint); ("partId", Schema.Tint); ("title", Schema.Tstring) ]

let make_tables (cfg : config) : Table.t list =
  let rng = Rng.create ~seed:cfg.seed in
  let atomic_rows =
    List.init cfg.atomic_parts (fun i ->
        [| Constant.Int (i + 1);
           Constant.Int (Rng.int rng 1000);
           Constant.Int (Rng.int rng 100_000);
           Constant.Int (Rng.int rng 100_000);
           Constant.Int (1 + Rng.int rng (max cfg.composite_parts 1)) |])
  in
  (* random placement: shuffle before paging (unclustered extent) *)
  let arr = Array.of_list atomic_rows in
  Rng.shuffle rng arr;
  let atomic =
    Table.create ~name:"AtomicPart" ~schema:atomic_part_schema ~object_size:56
      ~page_size:4096 ~fill:0.96 ~index_on:[ "id"; "buildDate" ]
      (Array.to_list arr)
  in
  let composite_rows =
    List.init cfg.composite_parts (fun i ->
        [| Constant.Int (i + 1);
           Constant.Int (Rng.int rng 1000);
           Constant.Int (1 + Rng.int rng (max cfg.documents 1)) |])
  in
  let composite =
    Table.create ~name:"CompositePart" ~schema:composite_part_schema ~object_size:40
      ~cluster_on:"id" ~index_on:[ "id" ] composite_rows
  in
  let connection_rows =
    List.concat_map
      (fun from ->
        List.init cfg.connections_per_part (fun _ ->
            [| Constant.Int (from + 1);
               Constant.Int (1 + Rng.int rng cfg.atomic_parts);
               Constant.Int (1 + Rng.int rng 100) |]))
      (List.init cfg.atomic_parts Fun.id)
  in
  let conn_arr = Array.of_list connection_rows in
  Rng.shuffle rng conn_arr;
  let connection =
    Table.create ~name:"Connection" ~schema:connection_schema ~object_size:24
      ~index_on:[ "fromId"; "toId" ] (Array.to_list conn_arr)
  in
  let document_rows =
    List.init cfg.documents (fun i ->
        [| Constant.Int (i + 1);
           Constant.Int (1 + Rng.int rng (max cfg.composite_parts 1));
           Constant.String (Fmt.str "doc-%04d" (i + 1)) |])
  in
  let document =
    Table.create ~name:"Document" ~schema:document_schema ~object_size:64
      ~cluster_on:"id" ~index_on:[ "id" ] document_rows
  in
  [ atomic; composite; connection; document ]

(* The Yao-based cost rules of the paper's Fig 13, generalized over the
   collection (the wrapper-scope version; Fig 13 itself is the
   [select(Collection, Id = value)] instance). *)
let yao_rules =
  {|
  let IO = 25; let Output = 9; let Eval = 0.4; let Startup = 120; let Probe = 12;
  let PageSize = 4096; let Fill = 0.96;
  let Huge = 1e18;

  rule scan(C) {
    CountObject = C.CountObject;
    TotalSize = C.TotalSize;
    TimeFirst = Startup + IO;
    TotalTime = Startup + IO * ceil(C.TotalSize / (PageSize * Fill))
                + Output * C.CountObject;
    TimeNext = (TotalTime - TimeFirst) / max(C.CountObject, 1);
  }

  rule select(C, P) {
    CountObject = C.CountObject * sel(P);
    TotalSize = CountObject * C.ObjectSize;
    TimeFirst = C.TimeFirst + Eval + adtcost(P);
    TotalTime = C.TotalTime + (Eval + adtcost(P)) * C.CountObject;
    TimeNext = (TotalTime - TimeFirst) / max(CountObject, 1);
  }

  // Figure 13: index scan costed with Yao's page-fetch formula.
  rule select(C, P) {
    CountPage = ceil(C.TotalSize / (PageSize * Fill));
    CountObject = C.CountObject * sel(P);
    TotalSize = CountObject * C.ObjectSize;
    TimeFirst = if(indexed(P), Startup + 3 * Probe + IO, Huge);
    TotalTime = if(indexed(P),
                   Startup + 3 * Probe
                   + IO * CountPage * yao(C.CountObject, CountPage, CountObject)
                   + Output * CountObject,
                   Huge);
  }

  // Index join: probe the inner index per outer object; the IO is the
  // number of distinct inner pages the fetches touch (Yao again, this time
  // over the result cardinality).
  rule join(C1, C2, P) {
    CountPage2 = ceil(C2.TotalSize / (PageSize * Fill));
    CountObject = C1.CountObject * C2.CountObject * sel(P);
    TotalSize = CountObject * (C1.ObjectSize + C2.ObjectSize);
    TimeFirst = if(rindexed(P), C1.TimeFirst + 3 * Probe + IO, Huge);
    TotalTime = if(rindexed(P),
                   C1.TotalTime + C1.CountObject * 3 * Probe
                   + IO * CountPage2 * yao(C2.CountObject, CountPage2, CountObject)
                   + Output * CountObject,
                   Huge);
  }
  |}

(* The ObjectStore-backed OO7 source. [with_rules] controls whether the
   wrapper exports the Yao cost rules (the paper's proposal) or only
   statistics (the baseline calibrating approach of [GST96]). *)
let make_source ?(config = paper_config) ?(with_rules = true) ?(buffer_pages = 2048) () :
    Disco_wrapper.Wrapper.t =
  Disco_wrapper.Wrapper.create ~name:"oo7" ~engine:Costs.objectstore
    ~network:Costs.lan ~buffer_pages
    ~rules_text:(if with_rules then yao_rules else "")
    (make_tables config)

(* Reset the wrapper's buffer pool between measurements (cold-cache runs). *)
let cold_cache (w : Disco_wrapper.Wrapper.t) = Buffer.clear w.Disco_wrapper.Wrapper.buffer

(* --- The OO7 query workload [CDN93] ---------------------------------------

   The subset of the OO7 queries expressible in the mediator algebra, scaled
   by the configured database size. The paper's §5 validation uses "queries
   ... from the 007 benchmark"; these drive the workload-level accuracy
   bench. *)

open Disco_algebra

let scan_of collection binding =
  Plan.Scan { Plan.source = "oo7"; collection; binding }

let queries (cfg : config) : (string * Plan.t) list =
  let n = cfg.atomic_parts in
  [ (* Q1: exact-match lookup on AtomicPart ids (index equality) *)
    ( "Q1 exact match (id = k)",
      Plan.Select (scan_of "AtomicPart" "a", Pred.Cmp ("a.id", Pred.Eq, Constant.Int (n / 2)))
    );
    (* Q2: 1% range on buildDate (indexed) *)
    ( "Q2 1% buildDate range",
      Plan.Select
        (scan_of "AtomicPart" "a", Pred.Cmp ("a.buildDate", Pred.Lt, Constant.Int 10)) );
    (* Q3: 10% range on buildDate *)
    ( "Q3 10% buildDate range",
      Plan.Select
        (scan_of "AtomicPart" "a", Pred.Cmp ("a.buildDate", Pred.Lt, Constant.Int 100)) );
    (* Q4: documents of the first composite parts (join via partId) *)
    ( "Q4 Document x CompositePart",
      Plan.Join
        ( Plan.Select
            ( scan_of "Document" "d",
              Pred.Cmp ("d.id", Pred.Le, Constant.Int (max (cfg.documents / 10) 1)) ),
          scan_of "CompositePart" "c",
          Pred.Attr_cmp ("d.partId", Pred.Eq, "c.id") ) );
    (* Q5: composite parts of recently built atomic parts (index join) *)
    ( "Q5 AtomicPart x CompositePart",
      Plan.Join
        ( Plan.Select
            ( scan_of "AtomicPart" "a",
              Pred.Cmp ("a.buildDate", Pred.Lt, Constant.Int 10) ),
          scan_of "CompositePart" "c",
          Pred.Attr_cmp ("a.partOf", Pred.Eq, "c.id") ) );
    (* Q7: full scan of AtomicParts *)
    ("Q7 full scan", scan_of "AtomicPart" "a");
    (* Q8: outgoing connections of a window of atomic parts (index join) *)
    ( "Q8 AtomicPart x Connection",
      Plan.Join
        ( Plan.Select
            (scan_of "AtomicPart" "a", Pred.Cmp ("a.id", Pred.Le, Constant.Int (n / 100))),
          scan_of "Connection" "k",
          Pred.Attr_cmp ("a.id", Pred.Eq, "k.fromId") ) ) ]
