(* Deterministic fault injection for the wrapper/mediator boundary.

   A [profile] describes how one source misbehaves — latency spikes,
   transient errors, stall (timeout) windows and hard unavailability
   intervals — entirely in simulated clock time, so a run is a pure function
   of (data seed, fault seed, profile, workload): the same configuration
   replays the same spikes, the same failures and the same recoveries.

   An [injector] is a profile installed for one source. Every [decide] call
   consumes a fixed number of PRNG draws whatever the outcome, so the random
   stream stays aligned across branches and runs are reproducible even when
   interval membership changes which branch is taken. *)

open Disco_common

type profile = {
  seed : int;               (* fault randomness; independent of the data seed *)
  spike_prob : float;       (* chance a successful answer carries a spike *)
  spike_ms : float;         (* spike magnitude: uniform in [0, spike_ms) *)
  transient_prob : float;   (* chance an attempt fails with a transient error *)
  transient_ms : float;     (* latency before a transient error surfaces *)
  stall_prob : float;       (* chance an attempt hangs past any timeout *)
  outages : (float * float) list;  (* hard unavailability [start, stop), sim ms *)
  stalls : (float * float) list;   (* timeout windows [start, stop), sim ms *)
}

let none =
  { seed = 0;
    spike_prob = 0.;
    spike_ms = 0.;
    transient_prob = 0.;
    transient_ms = 40.;
    stall_prob = 0.;
    outages = [];
    stalls = [] }

type outcome =
  | Respond of float   (* answer arrives, [extra] ms late (0 = healthy) *)
  | Fail_after of float (* transient error surfacing after this many ms *)
  | Stall              (* no answer within any timeout *)
  | Refuse             (* hard unavailable: immediate connection error *)

type t = {
  profile : profile;
  source : string;
  rng : Rng.t;
  mutable decisions : int;
}

let install profile ~source =
  { profile;
    source;
    (* derive the per-source stream from the profile seed and the source
       name, so two sources sharing a profile still fail independently *)
    rng = Rng.create ~seed:(profile.seed lxor Hashtbl.hash source);
    decisions = 0 }

let profile t = t.profile
let source t = t.source
let decisions t = t.decisions

let in_window now windows =
  List.exists (fun (start, stop) -> now >= start && now < stop) windows

let decide t ~now =
  t.decisions <- t.decisions + 1;
  let p = t.profile in
  if in_window now p.outages then Refuse
  else if in_window now p.stalls then Stall
  else begin
    (* fixed draw order and count, independent of the outcome *)
    let u_transient = Rng.float t.rng 1. in
    let u_stall = Rng.float t.rng 1. in
    let u_spike = Rng.float t.rng 1. in
    let spike = Rng.float t.rng (Float.max p.spike_ms 1e-9) in
    if u_transient < p.transient_prob then Fail_after p.transient_ms
    else if u_stall < p.stall_prob then Stall
    else if u_spike < p.spike_prob then Respond spike
    else Respond 0.
  end

(* --- Profile spec parsing (the CLI's --fault-profile) ----------------------

   Grammar (whitespace-free):

     spec     ::= entry (';' entry)*
     entry    ::= SOURCE ':' field (',' field)*
     field    ::= 'seed=' INT
                | 'spike=' PROB '@' MS      latency spikes
                | 'err=' PROB ['@' MS]      transient errors
                | 'stall=' PROB             probabilistic stalls
                | 'outage=' MS '-' MS       hard unavailability interval
                | 'stallwin=' MS '-' MS     timeout window

   e.g.  "web:err=0.3@40,spike=0.2@500,seed=7;files:outage=0-5000" *)

let parse_error spec msg =
  Fmt.invalid_arg "bad fault profile %S: %s" spec msg

let parse_float spec s =
  match float_of_string_opt s with
  | Some f -> f
  | None -> parse_error spec (Fmt.str "not a number: %S" s)

let parse_range spec s =
  match String.index_opt s '-' with
  | Some i ->
    ( parse_float spec (String.sub s 0 i),
      parse_float spec (String.sub s (i + 1) (String.length s - i - 1)) )
  | None -> parse_error spec (Fmt.str "expected START-STOP, got %S" s)

let parse_field spec profile field =
  match String.index_opt field '=' with
  | None -> parse_error spec (Fmt.str "expected key=value, got %S" field)
  | Some i ->
    let key = String.sub field 0 i in
    let value = String.sub field (i + 1) (String.length field - i - 1) in
    let prob_at () =
      match String.index_opt value '@' with
      | Some j ->
        ( parse_float spec (String.sub value 0 j),
          Some (parse_float spec (String.sub value (j + 1) (String.length value - j - 1))) )
      | None -> (parse_float spec value, None)
    in
    (match key with
     | "seed" ->
       (match int_of_string_opt value with
        | Some s -> { profile with seed = s }
        | None -> parse_error spec (Fmt.str "not an integer seed: %S" value))
     | "spike" ->
       let prob, ms = prob_at () in
       { profile with
         spike_prob = prob;
         spike_ms = Option.value ~default:profile.spike_ms ms }
     | "err" ->
       let prob, ms = prob_at () in
       { profile with
         transient_prob = prob;
         transient_ms = Option.value ~default:profile.transient_ms ms }
     | "stall" -> { profile with stall_prob = parse_float spec value }
     | "outage" -> { profile with outages = profile.outages @ [ parse_range spec value ] }
     | "stallwin" -> { profile with stalls = profile.stalls @ [ parse_range spec value ] }
     | other -> parse_error spec (Fmt.str "unknown field %S" other))

let split_on c s = String.split_on_char c s |> List.filter (fun s -> s <> "")

let parse_spec spec : (string * profile) list =
  List.map
    (fun entry ->
      match String.index_opt entry ':' with
      | None -> parse_error spec (Fmt.str "expected SOURCE:fields, got %S" entry)
      | Some i ->
        let source = String.sub entry 0 i in
        let fields =
          split_on ',' (String.sub entry (i + 1) (String.length entry - i - 1))
        in
        (source, List.fold_left (parse_field spec) none fields))
    (split_on ';' spec)

let pp_window ppf (a, b) = Fmt.pf ppf "[%.0f,%.0f)" a b

let pp_profile ppf p =
  Fmt.pf ppf
    "seed=%d spike=%.2f@%.0fms err=%.2f@%.0fms stall=%.2f outages=%a stallwins=%a"
    p.seed p.spike_prob p.spike_ms p.transient_prob p.transient_ms p.stall_prob
    (Fmt.list ~sep:Fmt.comma pp_window) p.outages
    (Fmt.list ~sep:Fmt.comma pp_window) p.stalls
