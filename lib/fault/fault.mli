(** Deterministic fault injection for the wrapper/mediator boundary.

    A {!profile} describes how one source misbehaves — latency spikes,
    transient errors, stall windows, hard unavailability intervals — in
    simulated clock time. Installing a profile on a source yields an
    injector whose decisions are a pure function of (profile seed, source
    name, decision index, simulated now): the same configuration replays
    the same faults, which is what makes retry/backoff behaviour testable
    and benchable. *)

type profile = {
  seed : int;               (** fault randomness; independent of the data seed *)
  spike_prob : float;       (** chance a successful answer carries a spike *)
  spike_ms : float;         (** spike magnitude: uniform in [0, spike_ms) *)
  transient_prob : float;   (** chance an attempt fails with a transient error *)
  transient_ms : float;     (** latency before a transient error surfaces *)
  stall_prob : float;       (** chance an attempt hangs past any timeout *)
  outages : (float * float) list;  (** hard unavailability [start, stop), sim ms *)
  stalls : (float * float) list;   (** timeout windows [start, stop), sim ms *)
}

val none : profile
(** All probabilities zero, no windows: behaviourally inert. An injector
    built from [none] must leave every submit bit-identical to running with
    no injector at all. *)

type outcome =
  | Respond of float    (** answer arrives, this many ms late (0 = healthy) *)
  | Fail_after of float (** transient error surfacing after this many ms *)
  | Stall               (** no answer within any timeout *)
  | Refuse              (** hard unavailable: immediate connection error *)

type t
(** A profile installed for one source, with its own PRNG stream. *)

val install : profile -> source:string -> t
(** The injector's stream is seeded from [profile.seed] and [source], so
    sources sharing a profile still fail independently. *)

val decide : t -> now:float -> outcome
(** The fate of one submit attempt starting at simulated time [now].
    Outage windows dominate stall windows dominate the probabilistic draws.
    Each call outside a window consumes a fixed number of PRNG draws
    regardless of the branch taken, keeping runs reproducible. *)

val profile : t -> profile
val source : t -> string

val decisions : t -> int
(** Number of [decide] calls made so far. *)

val parse_spec : string -> (string * profile) list
(** Parse a CLI fault spec:
    [SOURCE:key=val,...;SOURCE:key=val,...] with fields [seed=N],
    [spike=P@MS], [err=P[@MS]], [stall=P], [outage=A-B], [stallwin=A-B]
    (the last two repeatable). E.g.
    ["web:err=0.3@40,spike=0.2@500,seed=7;files:outage=0-5000"].
    @raise Invalid_argument on malformed input. *)

val pp_profile : Format.formatter -> profile -> unit
