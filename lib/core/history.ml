(* Dynamic cost-formula extensions (paper §4.3.1).

   Two mechanisms make the cost model learn from executed subqueries:

   - [Exact] caching: after a subplan executes, its measured cost vector is
     installed as a query-scope rule that matches that exact subplan. The
     next identical subquery is estimated with the real cost (the HERMES
     style of historical costs).

   - [Adjust] parameter adjustment: instead of storing per-query formulas,
     the ratio measured/estimated TotalTime of each executed subquery updates
     a per-source multiplicative factor by exponential smoothing. The generic
     [submit] rule applies the factor through the [adjust(W)] context
     function, so all formulas sharing the parameter benefit at once — the
     paper's answer to HERMES' proliferation of statistical information. *)

open Disco_costlang
open Disco_algebra

type mode = Off | Exact | Adjust of { smoothing : float }

(* Feedback-driven statistics (§4.3, DESIGN.md §11): estimated vs. measured
   cardinalities of executed subplans maintain per-predicate selectivity
   corrections in the registry, and sustained misestimation (drift) bumps the
   model generation so cached plans are re-costed. *)
type feedback = {
  band : float;       (* drift when est/actual leaves [1/band, band] *)
  consecutive : int;  (* k drifting observations in a row trigger *)
  smoothing : float;  (* EWMA weight of the newest correction *)
}

let default_feedback = { band = 2.0; consecutive = 3; smoothing = 0.5 }

type record = {
  plan : Plan.t;
  source : string;
  measured : (Ast.cost_var * float) list;
  estimated_total : float;
  (* predicted output cardinality when the plan was chosen; kept so a
     snapshot replay re-derives the same selectivity corrections and drift
     streaks the original observations produced *)
  estimated_count : float option;
}

type t = {
  registry : Registry.t;
  mutable mode : mode;
  mutable records : record list;  (* newest first *)
  mutable feedback : feedback option;
  mutable on_drift : (source:string -> unit) option;
  (* consecutive drifting observations per (source, predicate key); guarded
     by [lock] — observations arrive sequentially from the gather domain
     today, but the short-lock discipline keeps the subsystem safe if that
     ever changes (same pattern as [Registry]/[Health]). *)
  streaks : (string * string, int) Hashtbl.t;
  lock : Mutex.t;
}

let create ?(mode = Off) registry =
  { registry;
    mode;
    records = [];
    feedback = None;
    on_drift = None;
    streaks = Hashtbl.create 16;
    lock = Mutex.create () }

let set_mode t mode = t.mode <- mode

let mode t = t.mode

let set_feedback t ?on_drift fb =
  t.feedback <- fb;
  t.on_drift <- on_drift;
  Mutex.protect t.lock (fun () -> Hashtbl.reset t.streaks)

let feedback t = t.feedback

let records t = List.rev t.records

(* The predicate whose selectivity the observation measures: the outermost
   selection of the executed subplan. Joins and bare scans carry no single
   predicate-selectivity signal and do not update corrections or streaks. *)
let rec select_pred (p : Plan.t) =
  match p with
  | Plan.Select (_, pred) -> Some pred
  | Plan.Project (q, _) | Plan.Sort (q, _) | Plan.Dedup q
  | Plan.Submit (_, q) | Plan.Aggregate (q, _) ->
    select_pred q
  | Plan.Scan _ | Plan.Join _ | Plan.Union _ -> None

(* One estimated-vs-actual cardinality observation. Corrections move by
   exponential smoothing toward the factor that would have made the estimate
   exact; drift (ratio outside the band for [consecutive] observations of
   the same predicate) resets the streak, invalidates the model generation —
   the single bump republishing all accumulated corrections to cached
   plans — and hands the source to [on_drift] for histogram recalibration. *)
let feed_cardinality t ~source ~plan ~actual ~estimated =
  match t.feedback with
  | None -> ()
  | Some fb ->
    (match select_pred plan with
     | None -> ()
     | Some pred ->
       let key = Pred.to_string pred in
       let ratio = (estimated +. 1.) /. (actual +. 1.) in
       let old_fix = Registry.sel_fix t.registry ~source key in
       let target = old_fix /. ratio in
       let fix = (fb.smoothing *. target) +. ((1. -. fb.smoothing) *. old_fix) in
       if Float.is_finite fix && fix > 0. then
         Registry.set_sel_fix t.registry ~source key fix;
       let drifting = ratio > fb.band || ratio < 1. /. fb.band in
       let fire =
         Mutex.protect t.lock (fun () ->
             if not drifting then begin
               Hashtbl.replace t.streaks (source, key) 0;
               false
             end
             else begin
               let n =
                 1 + Option.value ~default:0 (Hashtbl.find_opt t.streaks (source, key))
               in
               if n >= fb.consecutive then begin
                 Hashtbl.replace t.streaks (source, key) 0;
                 true
               end
               else begin
                 Hashtbl.replace t.streaks (source, key) n;
                 false
               end
             end)
       in
       if fire then begin
         Registry.invalidate t.registry;
         match t.on_drift with None -> () | Some f -> f ~source
       end)

(* Feed back the measured costs of an executed wrapper subquery. [plan] is
   the subplan that was submitted (without the submit node itself). *)
let observe ?estimated_count t ~source ~(plan : Plan.t) ~measured ~estimated_total =
  t.records <-
    { plan; source; measured; estimated_total; estimated_count } :: t.records;
  (match (estimated_count, List.assoc_opt Ast.Count_object measured) with
   | Some estimated, Some actual when estimated >= 0. && actual >= 0. ->
     feed_cardinality t ~source ~plan ~actual ~estimated
   | _ -> ());
  match t.mode with
  | Off -> ()
  | Exact -> ignore (Registry.add_query_rule t.registry ~source plan measured)
  | Adjust { smoothing } ->
    (match List.assoc_opt Ast.Total_time measured with
     | None -> ()
     | Some real when real <= 0. || estimated_total <= 0. -> ()
     | Some real ->
       let ratio = real /. estimated_total in
       let old_factor = Registry.adjust t.registry ~source in
       (* the estimate already includes the current factor; the raw model
          error is ratio * old_factor *)
       let target = ratio *. old_factor in
       let factor = (smoothing *. target) +. ((1. -. smoothing) *. old_factor) in
       Registry.set_adjust t.registry ~source factor)

let forget t =
  t.records <- [];
  Mutex.protect t.lock (fun () -> Hashtbl.reset t.streaks);
  List.iter
    (fun source ->
      Registry.remove_query_rules t.registry ~source;
      Registry.set_adjust t.registry ~source 1.;
      Registry.clear_sel_fixes t.registry ~source)
    (Disco_catalog.Catalog.source_names (Registry.catalog t.registry))
