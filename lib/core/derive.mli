(** Attribute-level statistics of intermediate results.

    The five cost variables of a node are rule-driven; attribute statistics
    (Indexed, CountDistinct, Min, Max) of intermediate results are derived
    structurally by the mediator so that formulas such as [C.id.Min] and the
    context functions [sel]/[indexed] are meaningful on any operand. Scans
    read the catalog; selections narrow distinct/min/max; every non-scan
    operator clears [Indexed] (an operator's output is a stream, not an
    indexed extent) — projections excepted, since they are width-only. *)

open Disco_common
open Disco_catalog
open Disco_algebra

type attr_stat = {
  indexed : bool;
  distinct : float;
  min : Constant.t;
  max : Constant.t;
  hist : Histogram.t option;
      (** value distribution, carried from the catalog through scans and
          clipped by range predicates; equality pins drop it *)
}

type t = (string * attr_stat) list
(** Qualified attribute name -> statistics. *)

val default_stat : attr_stat

val find : t -> string -> attr_stat option
(** Exact (qualified) lookup. *)

val find_loose : t -> string -> attr_stat option
(** Qualified lookup, falling back to matching the unqualified part; supports
    rules written with bare attribute names such as [id]. When several
    qualified attributes share the bare name (e.g. [e.id] and [d.id] above a
    join), the tie-break is derivation order: the {e first} entry wins, which
    for a join means the left operand's attribute (children are concatenated
    left-to-right by {!of_node}). Rules that care which side they read should
    use the qualified name. *)

val of_catalog_attr : Stats.attribute -> attr_stat

val clear_indexed : t -> t

val narrow_cmp : t -> string -> Pred.cmp -> Constant.t -> t
(** Narrow by one atomic comparison: equality pins the value, ranges move the
    bounds and scale the distinct count. *)

val narrow_pred : t -> Pred.t -> t
(** Narrow by all conjuncts of a predicate (disjunctions and negations are
    left untouched). *)

val of_node : Catalog.t -> Plan.t -> t list -> t
(** Derived statistics of one node given its children's. *)

val pp : Format.formatter -> t -> unit
