(** The mediator's cost-information store.

    During the registration phase the rules, parameters ([let]) and functions
    ([def]) exported by each wrapper are compiled and integrated here (paper
    §4.1); during query processing the estimator asks it for the rules
    matching each plan node. Lookup merges a source's rules with the
    default-scope rules, sorted by matching level, and caches the merged
    per-(source, operator) lists — the paper's "own efficient [overriding
    mechanism] based on kind of virtual tables". *)

open Disco_catalog
open Disco_costlang

val default_source : string
(** ["default"]: the pseudo-source owning the generic model. *)

val mediator_source : string
(** ["mediator"]: the pseudo-source owning local-scope rules; also the rule
    context of plan nodes outside any [submit]. *)

(** Which formula backend newly registered rules compile to. [Bytecode]
    (the default) runs the registration-time optimizer ({!Opt}) and the
    flat VM ({!Vm}) with slot pre-resolution; [Closure] keeps the original
    closure-tree backend ({!Compile}) as the differential reference. *)
type backend = Closure | Bytecode

type t

val create : ?backend:backend -> Catalog.t -> t

val backend : t -> backend

val catalog : t -> Catalog.t

val generation : t -> int
(** Monotonic stamp of the blended cost model. It bumps on every write that
    can change an estimate: rule registration (including query-scope
    historical rules and their removal), source (re-)registration — rules,
    [let] parameters and ADT exports — and calibration/history adjustment
    factors. A cached estimation result is valid only while the generation it
    was computed under is still current. *)

val invalidate : t -> unit
(** Drop the merged-rule cache and bump the generation without changing any
    registered content. The feedback loop uses it when drift detection
    decides that accumulated statistics corrections must reach cached plans
    ({!Plancache} entries and VM slot caches validate against the
    generation). Safe to call concurrently with estimation (short-lock
    discipline). *)

(** {1 Statistics resolution helpers (shared with the estimator)} *)

val extent_stat : Stats.extent -> string -> float option
(** [CountObject], [TotalSize] or [ObjectSize] of an extent. *)

val attr_stat_value : Derive.attr_stat -> string -> Value.t option
(** [Indexed] (0/1), [CountDistinct], [Min] or [Max] of an attribute. *)

val catalog_path : t -> source:string -> string list -> Value.t option
(** Resolve [Collection.Stat] or [Collection.Attr.Stat] against the catalog
    for a named collection of [source]. *)

(** {1 Wrapper parameters and functions} *)

val lookup_let : t -> source:string -> string -> Value.t option
(** A [let]-bound parameter of a source, evaluated lazily and memoized; lets
    may reference earlier lets, catalog statistics of their source, defs and
    builtins. *)

val lookup_def : t -> source:string -> string -> Compile.def option

val lookup_let_or_default : t -> source:string -> string -> Value.t option
(** Falls back to the generic model's parameters, so wrapper rules may
    reference coefficients such as [IO]. *)

val lookup_def_or_default : t -> source:string -> string -> Compile.def option

(** {1 Registration} *)

val add_rule :
  ?interface_of:string -> ?scope_override:Scope.t -> t -> source:string -> Ast.rule ->
  Rule.t
(** Compile and install one rule; the scope is {!Rule.classify}ed unless
    overridden (the generic model forces [Default]). *)

val add_query_rule : t -> source:string -> Disco_algebra.Plan.t ->
  (Ast.cost_var * float) list -> Rule.t
(** Install a query-scope rule recording measured costs for one exact subplan
    (historical costs, paper §4.3.1). *)

val remove_query_rules : t -> source:string -> unit

val clear_source : t -> source:string -> unit
(** Drop a source's rules, parameters and functions (its query-scope history
    is kept); part of re-registration. *)

val register_source_decl : ?scope_override:Scope.t -> t -> Ast.source_decl -> Rule.t list
(** Register everything a wrapper exported: interfaces populate the catalog;
    lets, defs and rules populate the cost store. Re-registration replaces
    the source's previous rules and parameters (the paper's administrative
    interface for refreshing out-of-date cost information, §2.1). Returns
    the compiled rules. *)

val register_text : ?scope_override:Scope.t -> t -> what:string -> string -> string
(** Parse and register cost-language text; returns the source name. *)

(** {1 Lookup} *)

val rules_for : t -> source:string -> operator:string -> Rule.t list
(** Rules of [source] merged with the default model's, most specific first
    (cached). *)

val matching : t -> source:string -> Disco_algebra.Plan.t -> (Rule.t * Rule.bindings) list
(** All rules matching a node, most specific first, with their bindings. *)

val rule_count : t -> source:string -> int

(** {1 Iteration}

    Whole-model traversal for the static analyzer ([lib/analysis]): every
    registered source, each source's own compiled rules with their scopes,
    and its [let] parameter names. *)

val sources : t -> string list
(** All registered source names (including ["default"] and ["mediator"] when
    populated), sorted. *)

val source_rules : t -> source:string -> Rule.t list
(** The source's own rules in declaration order (no default-model merge —
    use {!rules_for} for merged chains). *)

val let_names : t -> source:string -> string list
(** Names of the source's [let] parameters, in declaration order. *)

(** {1 ADT operation costs (paper §7)}

    Wrappers export the per-call cost and selectivity of their abstract-
    data-type operations as [let AdtCost_<fn> = ...] and [let AdtSel_<fn> =
    ...]; registration harvests them into a global table visible to the
    generic model's [adtcost(P)] context function and to selectivity
    estimation. *)

val register_adt : t -> name:string -> cost_ms:float -> selectivity:float -> unit

val adt_cost : t -> string -> float option
(** Exported per-call cost of an ADT operation, in ms. *)

val adt_selectivity : t -> string -> float option

(** {1 Historical adjustment factors (paper §4.3.1)} *)

val set_adjust : t -> source:string -> float -> unit
val adjust : t -> source:string -> float
(** Per-source multiplicative factor applied by the generic [submit] rule via
    the [adjust(W)] context function; defaults to 1. *)

(** {1 Feedback-driven selectivity corrections (paper §4.3)}

    Multiplicative corrections to estimated predicate selectivities, keyed by
    (source, printed predicate) and maintained by {!History} from observed
    cardinalities. Unlike {!set_adjust}, writes deliberately do {e not} bump
    the generation: corrections accumulate silently while plans keep being
    served from caches, and only a drift-triggered {!invalidate} republishes
    them. [sel_fix] is lock-free until the first correction is installed, so
    the feedback-off path costs nothing. *)

val set_sel_fix : t -> source:string -> string -> float -> unit
val sel_fix : t -> source:string -> string -> float
(** The correction for a predicate key; 1 when none is installed. *)

val clear_sel_fixes : t -> source:string -> unit
