(** The cost evaluation algorithm (paper §4.2, Fig 11).

    The paper describes a two-phase traversal: top-down association of cost
    formulas with nodes (propagating the list of variables each child must
    compute), then bottom-up evaluation. This implementation realizes the
    same dataflow demand-driven: requesting a variable of a node selects the
    most specific matching rules providing it, and evaluating their formulas
    recursively demands exactly the referenced child variables. The two
    optimizations of §4.2 fall out: only formulas computing required
    variables are invoked, and a child whose variables are never referenced
    (e.g. under a query-scope rule with constant formulas) is never visited.

    Conflicts — several formulas for the same variable at the same matching
    level — are resolved by evaluating all of them and keeping the lowest
    value (§4.2 step 3). The branch-and-bound extension of §4.3.2 aborts
    estimation as soon as any node's TotalTime exceeds the given bound. *)

open Disco_algebra
open Disco_costlang

exception Aborted
(** Raised when [abort_above] is exceeded (§4.3.2). *)

type provenance = { rule_id : int; rule_scope : Scope.t; rule_source : string }
(** Which rule supplied a computed variable (for explain output and the
    scope-ablation benches). *)

type ctx = {
  registry : Registry.t;
  abort_above : float option;
  evals : int ref;  (** number of formula evaluations performed *)
  shard : int;
      (** VM slot-cache shard this pass resolves through
          ({!Disco_costlang.Vm.slot_cache}); the domain-pool slot when
          estimating in parallel, [0] on the sequential path *)
}

type ann = {
  node : Plan.t;
  source : string;  (** source whose rules govern this node *)
  inputs : ann array;
  stats : Derive.t Lazy.t;  (** derived attribute statistics *)
  matched : (Rule.t * Rule.bindings) list Lazy.t;  (** most specific first *)
  vars : (Ast.cost_var, float * provenance) Hashtbl.t;
  insts : (int, inst) Hashtbl.t;
  mutable in_progress : Ast.cost_var list;  (** cycle detection *)
}
(** A plan node annotated with its (incrementally computed) cost variables. *)

(** Per-(node, rule) evaluation instance: body assignments are evaluated
    sequentially and cached, so locals (Fig 13's [CountPage]) and earlier
    results are visible to later formulas of the same body. *)
and inst = {
  rule : Rule.t;
  bindings : Rule.bindings;
  values : (string, Value.t) Hashtbl.t;
  mutable next_assign : int;
  mutable vmcache : Vm.ctx option;
      (** bytecode evaluation context, allocated once per instance (carries
          the per-instance dynamic-reference memo) *)
  mutable vmpass : ctx option;
      (** the estimation pass [vmcache] is pinned to; a new pass repins the
          slot column without allocating *)
  mutable vmgen : int;
      (** registry generation the dynamic-reference memo was filled under;
          the memo is dropped only when the generation moves, like the slot
          banks *)
}

val make_ctx :
  ?abort_above:float -> ?evals:int ref -> ?shard:int -> Registry.t -> ctx

type memo
(** A per-optimization memo of annotated subtrees, keyed on the rule-context
    source and the canonical structural hash of the subtree
    ({!Plan.hash}/{!Plan.equal_structural}). Structurally equal subtrees
    share one {!ann} — and with it every cost variable already computed — so
    repeated estimation of overlapping candidate plans never re-runs a
    formula on an already-costed subtree. A memo is only sound while the
    registry is unchanged: discard it after any write (see
    {!Registry.generation}). *)

val new_memo : unit -> memo

val memo_counters : memo -> int * int
(** [(subtree hits, subtree misses)] since creation. *)

val build : ?memo:memo -> Registry.t -> source:string -> Plan.t -> ann
(** Annotate a plan without computing anything; [source] is the rule context
    of the root (nodes under [Submit] switch to the submitted source, scans
    to their own). With [memo], already-annotated subtrees are shared instead
    of rebuilt. *)

val require : ctx -> ann -> Ast.cost_var -> float
(** Compute (and cache) one cost variable of a node.
    @raise Aborted when the bound is exceeded
    @raise Disco_common.Err.Eval_error on formula errors or circular
    variable dependencies *)

val estimate :
  ?abort_above:float ->
  ?evals:int ref ->
  ?memo:memo ->
  ?shard:int ->
  ?require_vars:Ast.cost_var list ->
  ?source:string ->
  Registry.t ->
  Plan.t ->
  ann
(** Annotate and compute the [require_vars] (default: all five) at the root.
    [source] defaults to the mediator; pass a wrapper name to estimate a
    subplan as the wrapper executes it. [memo] shares subtree annotations
    across calls (see {!memo}). [shard] (default [0]) selects the VM
    slot-cache shard; parallel estimation passes its pool slot so shared
    rule slot tables are never written from two domains. A [memo] must not
    be shared across shards — give each domain its own. *)

val var : ann -> Ast.cost_var -> float option
(** A computed variable, if it has been demanded. *)

val provenance : ann -> Ast.cost_var -> provenance option

val total_time : ann -> float
(** @raise Disco_common.Err.Eval_error if TotalTime was not computed. *)

val count_object : ann -> float

val report : ann -> string
(** Multi-line explain report: each node with its computed variables and the
    scope of the rule that supplied them. *)
