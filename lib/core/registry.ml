(* The mediator's cost-information store. During the registration phase the
   rules, parameters ([let]) and functions ([def]) exported by each wrapper
   are compiled and integrated here (paper §4.1); during query processing the
   estimator asks it for the rules matching each plan node.

   Rules are grouped per (source, operator); lookup merges a source's rules
   with the default-scope rules and sorts by matching level (scope,
   specificity, declaration order), caching the merged lists — this plays the
   role of the paper's "own efficient [overriding mechanism] based on kind of
   virtual tables". *)

open Disco_common
open Disco_catalog
open Disco_costlang

let default_source = "default"
let mediator_source = "mediator"

(* Which formula backend newly registered rules compile to. [Bytecode] is
   the default: the optimizer pass ([Opt]) plus the flat VM ([Vm]) with
   slot pre-resolution. [Closure] keeps the original closure-tree backend
   ([Compile]) as the differential reference. *)
type backend = Closure | Bytecode

type source_entry = {
  mutable lets : (string * Compile.compiled) list;  (* declaration order *)
  let_cache : (string, Value.t) Hashtbl.t;
  mutable defs : (string * Compile.def) list;
  mutable rules : Rule.t list;  (* newest first; order field keeps rank *)
  mutable adjust : float;  (* historical adjustment factor, §4.3.1 *)
}

type t = {
  catalog : Catalog.t;
  backend : backend;
  sources : (string, source_entry) Hashtbl.t;
  merged : (string * string, Rule.t list) Hashtbl.t;  (* (source, operator) *)
  (* per-call cost and selectivity of ADT operations (paper §7), exported by
     wrappers as [let AdtCost_<fn> = ...] / [let AdtSel_<fn> = ...] *)
  adt_costs : (string, float) Hashtbl.t;
  adt_sels : (string, float) Hashtbl.t;
  (* feedback-driven multiplicative selectivity corrections, keyed by
     (source, printed predicate); maintained by [History] from observed
     cardinalities (§4.3). Writes do NOT bump the generation — corrections
     accumulate silently and only a drift-triggered [invalidate] republishes
     them to cached plans. [sel_fix_active] is a monotone flag letting the
     estimator skip the lock entirely until the first correction exists, so
     the feedback-off path costs nothing. *)
  sel_fixes : (string * string, float) Hashtbl.t;
  mutable sel_fix_active : bool;
  mutable next_id : int;
  mutable next_order : int;
  (* monotonic stamp of the blended model: bumps on every write that can
     change an estimate (rule registration, [let] update, calibration/history
     adjustment, ADT export). Caches of estimation results are valid only
     while the generation they were computed under is still current. *)
  mutable generation : int;
  (* guards the query-time lazily-filled tables ([merged], per-source
     [let_cache], on-demand [sources] entries) so concurrent estimation
     domains cannot corrupt a Hashtbl mid-resize. Held only across the
     table operations themselves, never across formula evaluation —
     [lookup_let] computes outside the lock (a duplicated computation is
     harmless: let values are deterministic within a generation). *)
  lock : Mutex.t;
}

let create ?(backend = Bytecode) catalog =
  { catalog;
    backend;
    sources = Hashtbl.create 16;
    merged = Hashtbl.create 64;
    adt_costs = Hashtbl.create 8;
    adt_sels = Hashtbl.create 8;
    sel_fixes = Hashtbl.create 16;
    sel_fix_active = false;
    next_id = 0;
    next_order = 0;
    generation = 0;
    lock = Mutex.create () }

let entry t source =
  Mutex.protect t.lock (fun () ->
      match Hashtbl.find_opt t.sources source with
      | Some e -> e
      | None ->
        let e =
          { lets = [];
            let_cache = Hashtbl.create 8;
            defs = [];
            rules = [];
            adjust = 1. }
        in
        Hashtbl.add t.sources source e;
        e)

let bump t = t.generation <- t.generation + 1

let generation t = t.generation

let invalidate t =
  Mutex.protect t.lock (fun () -> Hashtbl.reset t.merged);
  bump t

(* --- Feedback-driven selectivity corrections (§4.3) ---------------------- *)

let set_sel_fix t ~source key factor =
  Mutex.protect t.lock (fun () ->
      Hashtbl.replace t.sel_fixes (source, key) factor);
  t.sel_fix_active <- true

let sel_fix t ~source key =
  if not t.sel_fix_active then 1.
  else
    Mutex.protect t.lock (fun () ->
        Option.value ~default:1. (Hashtbl.find_opt t.sel_fixes (source, key)))

let clear_sel_fixes t ~source =
  Mutex.protect t.lock (fun () ->
      Hashtbl.iter
        (fun ((s, _) as k) _ -> if String.equal s source then Hashtbl.remove t.sel_fixes k)
        (Hashtbl.copy t.sel_fixes))

(* --- Statistics resolution helpers (shared with the estimator) ---------- *)

let extent_stat (e : Stats.extent) = function
  | "CountObject" -> Some (float_of_int e.Stats.count_objects)
  | "TotalSize" -> Some (float_of_int e.Stats.total_size)
  | "ObjectSize" -> Some (float_of_int e.Stats.object_size)
  | _ -> None

let attr_stat_value (s : Derive.attr_stat) = function
  | "Indexed" -> Some (Value.Vnum (if s.Derive.indexed then 1. else 0.))
  | "CountDistinct" -> Some (Value.Vnum s.Derive.distinct)
  | "Min" -> Some (Value.Vconst s.Derive.min)
  | "Max" -> Some (Value.Vconst s.Derive.max)
  | _ -> None

(* Resolve [Collection.Stat] or [Collection.Attr.Stat] against the catalog
   for a named collection of [source]. *)
let catalog_path t ~source path : Value.t option =
  match path with
  | [ coll; stat ] when Catalog.mem_collection t.catalog ~source coll ->
    Option.map
      (fun f -> Value.Vnum f)
      (extent_stat (Catalog.extent_stats t.catalog ~source coll) stat)
  | [ coll; attr; stat ] when Catalog.mem_collection t.catalog ~source coll ->
    let st = Catalog.attribute_stats t.catalog ~source ~collection:coll attr in
    attr_stat_value (Derive.of_catalog_attr st) stat
  | _ -> None

(* --- Wrapper parameters and functions ----------------------------------- *)

(* Evaluation context for [let] bindings: other lets, catalog statistics of
   the same source, pure builtins and the source's own [def]s. *)
let rec let_ctx t ~source : Compile.ctx =
  { Compile.resolve_ref =
      (fun path ->
        match path with
        | [ x ] ->
          (match lookup_let t ~source x with
           | Some v -> v
           | None ->
             (match catalog_path t ~source path with
              | Some v -> v
              | None -> raise (Err.Eval_error (Fmt.str "unbound name %S in let" x))))
        | _ ->
          (match catalog_path t ~source path with
           | Some v -> v
           | None ->
             raise
               (Err.Eval_error
                  (Fmt.str "cannot resolve path %S in let" (String.concat "." path)))))
    ;
    call =
      (fun name args ->
        match lookup_def t ~source name with
        | Some d -> Compile.apply_def d (let_ctx t ~source) args
        | None ->
          (match Builtins.find name with
           | Some f -> f args
           | None -> raise (Err.Eval_error (Fmt.str "unknown function %S in let" name))))
  }

and lookup_let t ~source name : Value.t option =
  let e = entry t source in
  match Mutex.protect t.lock (fun () -> Hashtbl.find_opt e.let_cache name) with
  | Some v -> Some v
  | None ->
    (match List.assoc_opt name e.lets with
     | None -> None
     | Some compiled ->
       (* computed outside the lock: let bodies may reference other lets
          (re-entering this function), and a racing duplicate computation
          yields the same value within a generation *)
       let v = compiled (let_ctx t ~source) in
       Mutex.protect t.lock (fun () -> Hashtbl.replace e.let_cache name v);
       Some v)

and lookup_def t ~source name : Compile.def option =
  List.assoc_opt name (entry t source).defs

(* A let of [source], falling back to the default model's parameters so that
   wrapper rules may reference generic coefficients such as [IO]. *)
let lookup_let_or_default t ~source name =
  match lookup_let t ~source name with
  | Some v -> Some v
  | None -> if String.equal source default_source then None else lookup_let t ~source:default_source name

let lookup_def_or_default t ~source name =
  match lookup_def t ~source name with
  | Some v -> Some v
  | None -> if String.equal source default_source then None else lookup_def t ~source:default_source name

(* --- Registration -------------------------------------------------------- *)

(* Compile a rule body under the registry's backend. For [Bytecode] each
   formula runs through the registration-time pipeline (def inlining,
   folding, simplification — [Opt.pipeline]) and compiles to a [Vm.program];
   references whose first segment cannot be a head variable, a cost variable
   or another body target — and whose later segments are not head variables —
   become pre-resolvable slots shared across the body.

   Only the rule's own source's defs are inlined: they are registered and
   cleared together with its rules, so the baked-in body can never go stale.
   Calls to default-model defs (and non-inlinable calls) keep the runtime
   [apply_def] path, exactly like the closure backend. *)
let compile_body t ~source ~(head : Ast.head option)
    (body : (Ast.target * Ast.expr) list) : (Ast.target * Rule.code) list * Vm.slots =
  match t.backend with
  | Closure ->
    ( List.map (fun (tgt, e) -> (tgt, Rule.Closure (Compile.compile e))) body,
      Vm.empty_slots () )
  | Bytecode ->
    let head_vars = match head with Some h -> Ast.head_var_names h | None -> [] in
    let targets = List.map (fun (tgt, _) -> Ast.target_name tgt) body in
    let head_var x = List.mem x head_vars in
    let volatile_first x =
      Option.is_some (Ast.cost_var_of_name x) || List.mem x targets
    in
    let dynamic_first x = head_var x || volatile_first x in
    let lookup name =
      Option.map
        (fun (d : Compile.def) -> (d.Compile.params, d.Compile.def_ast))
        (lookup_def t ~source name)
    in
    let b = Vm.new_builder () in
    let body =
      List.map
        (fun (tgt, e) ->
          let e = Opt.pipeline ~lookup e in
          (tgt, Rule.Prog (Vm.compile b ~dynamic_first ~volatile_first ~head_var e)))
        body
    in
    (body, Vm.finish b)

let fresh_ids t =
  let id = t.next_id and order = t.next_order in
  t.next_id <- id + 1;
  t.next_order <- order + 1;
  (id, order)

(* Compile and add one rule. [scope_override] forces the scope (used for the
   generic model's Default scope); otherwise the rule is classified per the
   paper's hierarchy. *)
let add_rule ?interface_of ?scope_override t ~source (r : Ast.rule) =
  let local = String.equal source mediator_source in
  let scope =
    match scope_override with
    | Some s -> s
    | None -> Rule.classify ?interface_of ~local r.Ast.head
  in
  let id, order = fresh_ids t in
  (* interface inheritance: a rule attached to (or naming) a sub-interface is
     more specific than one on its parent, by the inheritance depth *)
  let depth_of name = Catalog.inheritance_depth t.catalog ~source name in
  let depth =
    let named = Rule.head_collection_literals r.Ast.head in
    let named = match interface_of with Some i -> i :: named | None -> named in
    List.fold_left (fun acc n -> max acc (depth_of n)) 0 named
  in
  let c0, c1, c2, c3 = Rule.specificity_of_head r.Ast.head in
  let body, slots = compile_body t ~source ~head:(Some r.Ast.head) r.Ast.body in
  let compiled =
    { Rule.id;
      scope;
      source;
      kind = Rule.Pattern r.Ast.head;
      body;
      slots;
      provides = Ast.rule_provides r;
      specificity = (c0 + depth, c1, c2, c3);
      order;
      ast = Some r }
  in
  (entry t source).rules <- compiled :: (entry t source).rules;
  invalidate t;
  compiled

(* Install a query-scope rule recording measured costs for one exact subplan
   (historical costs, §4.3.1). *)
let add_query_rule t ~source (plan : Disco_algebra.Plan.t)
    (vars : (Ast.cost_var * float) list) =
  let id, order = fresh_ids t in
  let body, slots =
    compile_body t ~source ~head:None
      (List.map (fun (v, x) -> (Ast.Cost v, Ast.Num x)) vars)
  in
  let compiled =
    { Rule.id;
      scope = Scope.Query;
      source;
      kind = Rule.Exact plan;
      body;
      slots;
      provides = List.map fst vars;
      specificity = (max_int, 0, 0, 0);
      order;
      ast = None }
  in
  (entry t source).rules <- compiled :: (entry t source).rules;
  invalidate t;
  compiled

let remove_query_rules t ~source =
  let e = entry t source in
  e.rules <-
    List.filter (fun (r : Rule.t) -> r.Rule.scope <> Scope.Query) e.rules;
  invalidate t

(* --- ADT operation costs (paper §7) -------------------------------------- *)

let register_adt t ~name ~cost_ms ~selectivity =
  Hashtbl.replace t.adt_costs name cost_ms;
  Hashtbl.replace t.adt_sels name selectivity;
  bump t

let adt_cost t name = Hashtbl.find_opt t.adt_costs name
let adt_selectivity t name = Hashtbl.find_opt t.adt_sels name

(* Harvest [AdtCost_*] / [AdtSel_*] parameters from a source's lets into the
   global ADT tables (they must be visible to the mediator's local rules and
   to selectivity estimation, not just to the exporting source). *)
let harvest_adt_lets t ~source (decl : Ast.source_decl) =
  let prefixed prefix name =
    let pl = String.length prefix in
    if String.length name > pl && String.sub name 0 pl = prefix then
      Some (String.sub name pl (String.length name - pl))
    else None
  in
  List.iter
    (function
      | Ast.Let (name, _) ->
        let value () =
          match lookup_let t ~source name with
          | Some v -> Value.to_num v
          | None -> raise (Err.Eval_error ("unresolved let " ^ name))
        in
        (match prefixed "AdtCost_" name with
         | Some fn -> Hashtbl.replace t.adt_costs fn (value ())
         | None ->
           (match prefixed "AdtSel_" name with
            | Some fn -> Hashtbl.replace t.adt_sels fn (value ())
            | None -> ()))
      | _ -> ())
    decl.Ast.items

(* Drop everything previously registered for a source (rules, parameters,
   functions), keeping only its query-scope history. Used by re-registration
   (the paper's administrative interface, §2.1). *)
let clear_source t ~source =
  let e = entry t source in
  e.lets <- [];
  Hashtbl.reset e.let_cache;
  e.defs <- [];
  e.rules <- List.filter (fun (r : Rule.t) -> r.Rule.scope = Scope.Query) e.rules;
  invalidate t

(* Register everything a wrapper exported: interfaces populate the catalog,
   lets/defs/rules populate the cost store. Returns the compiled rules.
   Re-registration replaces the source's previous rules and parameters
   (refreshing out-of-date cost information, §2.1). *)
let register_source_decl ?scope_override t (decl : Ast.source_decl) =
  let source = decl.Ast.source_name in
  (match Hashtbl.find_opt t.sources source with
   | Some e when e.rules <> [] || e.lets <> [] || e.defs <> [] ->
     clear_source t ~source
   | _ -> ());
  let e = entry t source in
  let register_interface (i : Ast.interface_decl) =
    let own_attrs =
      List.filter_map
        (function Ast.Attr_decl (ty, n) -> Some (n, ty) | _ -> None)
        i.Ast.members
    in
    (* single inheritance: prepend the parent's attributes (the parent must
       be registered first — declare super-interfaces before their subs) *)
    let inherited =
      match i.Ast.iface_parent with
      | None -> []
      | Some p ->
        let entry =
          try Catalog.find_collection t.catalog ~source p
          with Err.Unknown_collection _ ->
            raise
              (Err.Eval_error
                 (Fmt.str "interface %s inherits from %s, which is not declared yet"
                    i.Ast.iface_name p))
        in
        List.map
          (fun (a : Schema.attribute) -> (a.Schema.attr_name, a.Schema.attr_type))
          entry.Catalog.schema.Schema.attributes
    in
    let attrs =
      inherited @ List.filter (fun (n, _) -> not (List.mem_assoc n inherited)) own_attrs
    in
    let schema = Schema.collection i.Ast.iface_name attrs in
    let extent =
      List.fold_left
        (fun acc -> function
          | Ast.Extent_decl { count; total; objsize } ->
            Stats.extent ~count_objects:(int_of_float count)
              ~total_size:(int_of_float total) ~object_size:(int_of_float objsize)
          | _ -> acc)
        Stats.default_extent i.Ast.members
    in
    let attr_stats =
      List.filter_map
        (function
          | Ast.Attr_stats { attr; indexed; distinct; min; max } ->
            Some
              ( attr,
                Stats.attribute ~indexed ~count_distinct:(int_of_float distinct) ~min
                  ~max () )
          | _ -> None)
        i.Ast.members
    in
    Catalog.register_collection ?parent:i.Ast.iface_parent t.catalog ~source ~schema
      ~extent ~attributes:attr_stats
  in
  (* First pass: catalog and parameters, so rules can reference them. *)
  List.iter
    (function
      | Ast.Interface i -> register_interface i
      | Ast.Let (name, expr) ->
        e.lets <- e.lets @ [ (name, Compile.compile expr) ];
        Hashtbl.reset e.let_cache
      | Ast.Def (name, params, body) ->
        e.defs <- e.defs @ [ (name, Compile.compile_def ~params body) ]
      | Ast.Capabilities ops -> Catalog.set_capabilities t.catalog ~source ops
      | Ast.Toplevel_rule _ -> ())
    decl.Ast.items;
  (* Second pass: rules (top-level and in-interface). *)
  let compiled =
    List.concat_map
      (function
        | Ast.Toplevel_rule r -> [ add_rule ?scope_override t ~source r ]
        | Ast.Interface i ->
          List.filter_map
            (function
              | Ast.Iface_rule r ->
                Some (add_rule ~interface_of:i.Ast.iface_name ?scope_override t ~source r)
              | _ -> None)
            i.Ast.members
        | Ast.Let _ | Ast.Def _ | Ast.Capabilities _ -> [])
      decl.Ast.items
  in
  harvest_adt_lets t ~source decl;
  (* lets and ADT exports change estimates even when no rule was (re)compiled
     above, so a registration always moves the generation *)
  bump t;
  compiled

(* Parse and register cost-language text for a named source. *)
let register_text ?scope_override t ~what text =
  let decl = Parser.parse_source ~what text in
  ignore (register_source_decl ?scope_override t decl);
  decl.Ast.source_name

(* --- Lookup -------------------------------------------------------------- *)

let rules_for t ~source ~operator : Rule.t list =
  (* the whole merge runs under the lock: it touches only [t.sources] and
     pure rule metadata, so holding it is cheap and keeps the lazily-filled
     [merged] table consistent across estimation domains *)
  Mutex.protect t.lock (fun () ->
      match Hashtbl.find_opt t.merged (source, operator) with
      | Some rs -> rs
      | None ->
        let of_source s =
          match Hashtbl.find_opt t.sources s with
          | None -> []
          | Some e ->
            List.filter (fun r -> String.equal (Rule.operator r) operator) e.rules
        in
        let all =
          if String.equal source default_source then of_source source
          else of_source source @ of_source default_source
        in
        let sorted = List.sort (fun a b -> Rule.compare_level b a) all in
        Hashtbl.replace t.merged (source, operator) sorted;
        sorted)

(* All rules matching [node], most specific first, with their bindings.
   Literal collection names in heads also match sub-interfaces (interface
   inheritance). *)
let matching t ~source (node : Disco_algebra.Plan.t) : (Rule.t * Rule.bindings) list =
  let operator = Rule.operator_of_node node in
  let is_instance (r : Disco_algebra.Plan.collection_ref) n =
    Catalog.is_instance t.catalog ~source:r.Disco_algebra.Plan.source
      r.Disco_algebra.Plan.collection n
  in
  List.filter_map
    (fun r -> Option.map (fun bs -> (r, bs)) (Rule.matches ~is_instance r node))
    (rules_for t ~source ~operator)

let rule_count t ~source = List.length (entry t source).rules

(* --- Iteration (used by the static analyzer) ----------------------------- *)

let sources t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.sources []
  |> List.sort String.compare

let source_rules t ~source =
  match Hashtbl.find_opt t.sources source with
  | None -> []
  | Some e -> List.rev e.rules  (* declaration order *)

let let_names t ~source =
  match Hashtbl.find_opt t.sources source with
  | None -> []
  | Some e -> List.map fst e.lets

let set_adjust t ~source f =
  (entry t source).adjust <- f;
  bump t
let adjust t ~source = (entry t source).adjust

let backend t = t.backend

let catalog t = t.catalog
