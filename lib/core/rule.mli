(** Compiled cost rules and rule-head matching (paper §3.3.2 and §4).

    A rule head is matched against a plan node by unification: free variables
    bind to the node's operands (children or scanned collections), attribute
    names, constants, or whole predicates; literal names must coincide with
    the node's corresponding component. A rule is more specific when more of
    its head positions are literal. *)

open Disco_common
open Disco_algebra
open Disco_costlang

(** What an operand position of a head refers to at match time. *)
type operand =
  | Input of int                 (** i-th child of the node *)
  | Base of Plan.collection_ref  (** the collection scanned by a scan node *)

type binding =
  | Boperand of operand
  | Battr of string      (** unqualified attribute name *)
  | Bconst of Constant.t
  | Bpred of Pred.t
  | Bname of string      (** source name (submit), attribute/group lists *)

type bindings = (string * binding) list

type kind =
  | Pattern of Ast.head
  | Exact of Plan.t  (** query-scope rules match one subplan structurally *)

(** A compiled formula: bytecode ({!Vm}) on the fast path, or the closure
    reference backend when the registry runs with the closure flag. *)
type code =
  | Closure of Compile.compiled
  | Prog of Vm.program

type t = {
  id : int;
  scope : Scope.t;
  source : string;  (** owning source; ["default"] for the generic model *)
  kind : kind;
  body : (Ast.target * code) list;
  slots : Vm.slots;  (** pre-resolvable references shared by the body *)
  provides : Ast.cost_var list;
  specificity : int * int * int * int;
      (** literal positions: (collections, attributes, constants,
          shaped-predicate bonus); lexicographic, higher is more specific *)
  order : int;  (** registration order; earlier wins ties (paper §3.3.2) *)
  ast : Ast.rule option;  (** original syntax, for explain output *)
}

val compare_level : t -> t -> int
(** Matching level: scope, then specificity, then declaration order (earlier
    is higher). Sorting descending puts the most specific rule first. *)

val same_level : t -> t -> bool
(** Same scope and specificity: competing rules whose formulas are all
    evaluated with the minimum kept (paper §4.2 step 3). *)

val specificity_of_head : Ast.head -> int * int * int * int

val head_collection_literals : Ast.head -> string list
(** Literal collection names appearing in a head. *)

val classify : ?interface_of:string -> local:bool -> Ast.head -> Scope.t
(** Scope of a parsed rule: inside an interface or naming a collection ->
    [Collection]; additionally with a fully ground predicate -> [Predicate];
    otherwise [Local] for the mediator's own rules, else [Wrapper]. *)

val subject : Plan.t -> Plan.collection_ref option
(** The collection a plan operand "is about", looking through operators that
    preserve the underlying extent: [select(scan(employee), p)] is an
    operation on [employee]. *)

val name_equal : Plan.collection_ref -> string -> bool
(** The default instance relation: plain collection-name equality. *)

val match_head :
  ?is_instance:(Plan.collection_ref -> string -> bool) ->
  Ast.head -> Plan.t -> bindings option
(** Unify a head pattern with a node; repeated variables must bind equal.
    [is_instance] extends literal collection matching to sub-interfaces
    (interface inheritance). *)

val matches :
  ?is_instance:(Plan.collection_ref -> string -> bool) ->
  t -> Plan.t -> bindings option
(** {!match_head} for pattern rules; structural plan equality for query-scope
    rules. *)

val operator_of_node : Plan.t -> string
val operator : t -> string

val pp : Format.formatter -> t -> unit
