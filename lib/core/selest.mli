(** Default selectivity estimation, exposed to cost formulas as the context
    function [sel(P)]: classical System-R style estimates over the derived
    statistics of a node's inputs (paper §2.3). *)

open Disco_common
open Disco_algebra

val default_eq : float
(** Fallback equality selectivity when statistics are unavailable (0.1). *)

val default_range : float
(** Fallback range selectivity (1/3). *)

val of_cmp : Derive.t list -> string -> Pred.cmp -> Constant.t -> float
(** Selectivity of [attr op const] against the inputs' statistics: histogram
    CDF when the attribute carries one (DESIGN.md §11), otherwise [1 /
    CountDistinct] for equality and min/max interpolation for ranges. *)

val of_attr_cmp : Derive.t list -> string -> string -> Pred.cmp -> float
(** Join selectivity: histogram bucket overlap when both attributes carry
    histograms of the same kind, otherwise [1 /
    Max(CountDistinct(A), CountDistinct(B))]. Note: the paper's §2.3 text
    says 1/Min; we follow the standard System-R 1/Max (see DESIGN.md
    deviations). *)

val default_apply : float
(** Selectivity assumed for an ADT operation when the wrapper exports none
    (0.25). *)

val of_pred : ?apply_sel:(string -> float option) -> Derive.t list -> Pred.t -> float
(** Selectivity of an arbitrary predicate; conjunction multiplies,
    disjunction adds with overlap correction, negation complements;
    [apply_sel] supplies wrapper-exported selectivities of ADT operations.
    Always in [[0, 1]]. *)

val indexed : Derive.t list -> Pred.t -> float
(** 1.0 when the predicate is a simple comparison whose attribute carries an
    index in the first input — the guard of the generic index-scan
    formulas. *)

val rindexed : Derive.t list -> Pred.t -> float
(** 1.0 when the predicate is an attribute equality whose second (inner)
    input side is indexed — the guard of the generic index-join formula. *)
