(* Default selectivity estimation, exposed to cost formulas as the context
   function [sel(P)]. Uses the classical System-R style estimates over the
   derived statistics of a node's inputs (paper §2.3 and §6: selectivity is
   "derived from the minimum, maximum, and number of distinct values of the
   restricted attributes"). *)

open Disco_common
open Disco_catalog
open Disco_algebra

(* NaN-safe: a NaN (e.g. an ADT selectivity hook returning 0/0) fails both
   comparisons and clamps to 0 instead of leaking through and poisoning the
   conjunction/disjunction arithmetic above it. Bit-identical to the naive
   clamp on every non-NaN input. *)
let clamp x = if x >= 1. then 1. else if x >= 0. then x else 0.

(* Classical fallback when statistics are unavailable. *)
let default_eq = 0.1
let default_range = 1. /. 3.

let find_attr (inputs : Derive.t list) name =
  List.fold_left
    (fun acc stats -> match acc with Some _ -> acc | None -> Derive.find_loose stats name)
    None inputs

let hist_cmp : Pred.cmp -> Histogram.cmp = function
  | Pred.Eq -> Histogram.Ceq
  | Pred.Ne -> Histogram.Cne
  | Pred.Lt -> Histogram.Clt
  | Pred.Le -> Histogram.Cle
  | Pred.Gt -> Histogram.Cgt
  | Pred.Ge -> Histogram.Cge

let of_cmp inputs a (op : Pred.cmp) v =
  match find_attr inputs a with
  | None ->
    (* mirror the with-statistics estimates: Ne complements Eq *)
    (match op with
     | Pred.Eq -> default_eq
     | Pred.Ne -> 1. -. default_eq
     | Pred.Lt | Pred.Le | Pred.Gt | Pred.Ge -> default_range)
  | Some { Derive.hist = Some h; _ }
    when Option.is_some (Histogram.sel_cmp h (hist_cmp op) v) ->
    (* Histogram CDF replaces the uniform interpolation when the attribute
       carries one and the constant maps into its key domain. *)
    Option.get (Histogram.sel_cmp h (hist_cmp op) v)
  | Some s ->
    (match op with
     | Pred.Eq -> 1. /. Float.max s.Derive.distinct 1.
     | Pred.Ne -> 1. -. (1. /. Float.max s.Derive.distinct 1.)
     | Pred.Lt | Pred.Le ->
       (match Constant.fraction ~min:s.Derive.min ~max:s.Derive.max v with
        | Some f -> f
        | None -> default_range)
     | Pred.Gt | Pred.Ge ->
       (match Constant.fraction ~min:s.Derive.min ~max:s.Derive.max v with
        | Some f -> 1. -. f
        | None -> default_range))

(* Join selectivity: 1 / Max(CountDistinct(A), CountDistinct(B)). The paper's
   §2.3 text says 1/Min, but the System-R estimate the rest of the paper's
   machinery builds on uses 1/Max (under containment of value sets); 1/Min
   badly overestimates joins whose sides have asymmetric distinct counts, so
   we follow the standard formula and note the deviation in DESIGN.md. *)
let of_attr_cmp inputs a b (op : Pred.cmp) =
  match op with
  | Pred.Eq ->
    let stat name = find_attr inputs name in
    let overlap =
      (* When both attributes carry histograms of the same kind, the join
         selectivity comes from their bucket overlap instead of the distinct
         counts — disjoint domains estimate (near) zero instead of 1/Max. *)
      match (stat a, stat b) with
      | Some { Derive.hist = Some ha; _ }, Some { Derive.hist = Some hb; _ } ->
        Histogram.join_eq ha hb
      | _ -> None
    in
    (match overlap with
     | Some s -> s
     | None ->
       let d name =
         match stat name with
         | Some s -> Float.max s.Derive.distinct 1.
         | None -> 10.
       in
       1. /. Float.max (d a) (d b))
  | _ -> default_range

(* Default selectivity of an ADT operation when the wrapper exports none. *)
let default_apply = 0.25

let rec of_pred ?(apply_sel = fun _ -> None) inputs (p : Pred.t) =
  let recur = of_pred ~apply_sel inputs in
  clamp
    (match p with
     | Pred.True -> 1.
     | Pred.Cmp (a, op, v) -> of_cmp inputs a op v
     | Pred.Attr_cmp (a, op, b) -> of_attr_cmp inputs a b op
     | Pred.Apply (fn, _, _) ->
       Option.value ~default:default_apply (apply_sel fn)
     | Pred.And (p, q) -> recur p *. recur q
     | Pred.Or (p, q) ->
       let sp = recur p and sq = recur q in
       sp +. sq -. (sp *. sq)
     | Pred.Not p -> 1. -. recur p)

(* [indexed inputs p] is 1.0 when [p] is a simple comparison whose attribute
   carries an index in the node's first input — the guard for the generic
   index-scan formulas. *)
let indexed inputs (p : Pred.t) =
  match p, inputs with
  | Pred.Cmp (a, _, _), first :: _ ->
    (match Derive.find_loose first a with
     | Some s when s.Derive.indexed -> 1.
     | _ -> 0.)
  | _ -> 0.

(* [rindexed inputs p] is 1.0 when [p] is an equi-comparison between
   attributes and the attribute belonging to the second (inner) input is
   indexed — the guard for the generic index-join formula. *)
let rindexed inputs (p : Pred.t) =
  match p, inputs with
  | Pred.Attr_cmp (a, _, b), [ _; right ] ->
    let check name =
      match Derive.find_loose right name with
      | Some s when s.Derive.indexed -> true
      | _ -> false
    in
    if check b || check a then 1. else 0.
  | _ -> 0.
