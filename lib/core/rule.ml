(* Compiled cost rules and rule-head matching (paper §3.3.2 and §4).

   A rule head is matched against a plan node by unification: free variables
   bind to the node's operands (children or scanned collections), attribute
   names, constants, or whole predicates; literal names must coincide with
   the node's corresponding component. Matching levels follow the paper: a
   rule is more specific when more of its head positions are literal. *)

open Disco_common
open Disco_algebra
open Disco_costlang

(* What an operand position of a head refers to at match time. *)
type operand =
  | Input of int                   (* i-th child of the node *)
  | Base of Plan.collection_ref    (* the collection scanned by a scan node *)

type binding =
  | Boperand of operand
  | Battr of string         (* unqualified attribute name *)
  | Bconst of Constant.t
  | Bpred of Pred.t
  | Bname of string         (* source name (submit), group/attr list marker *)

type bindings = (string * binding) list

type kind =
  | Pattern of Ast.head
  | Exact of Plan.t   (* query-scope rules match one subplan structurally *)

(* A compiled formula: bytecode ([Vm]) on the fast path, or the closure
   reference backend when the registry runs with [Compile.Closure]. *)
type code =
  | Closure of Compile.compiled
  | Prog of Vm.program

type t = {
  id : int;
  scope : Scope.t;
  source : string;  (* owning source; "default" for the generic model *)
  kind : kind;
  body : (Ast.target * code) list;
  slots : Vm.slots;  (* pre-resolvable references shared by the body *)
  provides : Ast.cost_var list;
  (* Literal positions in the head: (collections, attributes, constants,
     shaped-predicate bonus); lexicographic, higher is more specific. *)
  specificity : int * int * int * int;
  order : int;  (* registration order; earlier wins ties (paper §3.3.2) *)
  ast : Ast.rule option;  (* original syntax, for explain output *)
}

(* The matching level of a rule: scope first, then head specificity, then
   declaration order. Sorting by [compare_level] descending puts the most
   specific rule first. *)
let compare_level a b =
  match Scope.compare a.scope b.scope with
  | 0 ->
    (match compare a.specificity b.specificity with
     | 0 -> compare b.order a.order (* earlier order = higher level *)
     | c -> c)
  | c -> c

let same_level a b =
  Scope.compare a.scope b.scope = 0 && a.specificity = b.specificity

(* --- Specificity -------------------------------------------------------- *)

let arg_literal = function Ast.Pvar _ -> 0 | Ast.Pname _ | Ast.Pconst _ -> 1

let pred_literals = function
  | Ast.Ppred_var _ -> (0, 0, 0)
  | Ast.Pcmp (l, _, r) ->
    let attr_lit = function Ast.Pname _ -> 1 | _ -> 0 in
    let const_lit = function Ast.Pconst _ -> 1 | _ -> 0 in
    (0, attr_lit l + attr_lit r, const_lit l + const_lit r)

let specificity_of_head (h : Ast.head) =
  let shaped = function Ast.Ppred_var _ -> 0 | Ast.Pcmp _ -> 1 in
  match h with
  | Ast.Hscan c -> (arg_literal c, 0, 0, 0)
  | Ast.Hselect (c, p) ->
    let _, a, v = pred_literals p in
    (arg_literal c, a, v, shaped p)
  | Ast.Hproject (c, a) | Ast.Hsort (c, a) | Ast.Haggregate (c, a) ->
    (arg_literal c, arg_literal a, 0, 0)
  | Ast.Hjoin (l, r, p) ->
    let _, a, v = pred_literals p in
    (arg_literal l + arg_literal r, a, v, shaped p)
  | Ast.Hunion (l, r) -> (arg_literal l + arg_literal r, 0, 0, 0)
  | Ast.Hdedup c -> (arg_literal c, 0, 0, 0)
  | Ast.Hsubmit (w, c) -> (arg_literal w + arg_literal c, 0, 0, 0)

(* --- Scope classification (paper §4.1) ---------------------------------- *)

(* Head collections that are literal names. *)
let head_collection_literals (h : Ast.head) =
  let lit = function Ast.Pname n -> [ n ] | _ -> [] in
  match h with
  | Ast.Hscan c | Ast.Hselect (c, _) | Ast.Hproject (c, _) | Ast.Hsort (c, _)
  | Ast.Hdedup c | Ast.Haggregate (c, _) ->
    lit c
  | Ast.Hjoin (l, r, _) | Ast.Hunion (l, r) -> lit l @ lit r
  | Ast.Hsubmit (_, c) -> lit c

let head_pred_ground (h : Ast.head) =
  let ground_arg = function Ast.Pvar _ -> false | Ast.Pname _ | Ast.Pconst _ -> true in
  match h with
  | Ast.Hselect (_, Ast.Pcmp (l, _, r)) | Ast.Hjoin (_, _, Ast.Pcmp (l, _, r)) ->
    ground_arg l && ground_arg r
  | _ -> false

(* Classify a parsed rule. [interface_of] is the enclosing interface name
   when the rule appeared inside one; [local] marks the mediator's own rule
   set. *)
let classify ?interface_of ~local (h : Ast.head) : Scope.t =
  let has_collection =
    Option.is_some interface_of || head_collection_literals h <> []
  in
  if has_collection && head_pred_ground h then Scope.Predicate
  else if has_collection then Scope.Collection
  else if local then Scope.Local
  else Scope.Wrapper

(* --- Matching ----------------------------------------------------------- *)

(* The collection a plan operand "is about": looking through operators that
   preserve the underlying extent. [select(scan(employee), p)] is an
   operation on employee, so a rule head naming [employee] matches it. *)
let rec subject (p : Plan.t) : Plan.collection_ref option =
  match p with
  | Plan.Scan r -> Some r
  | Plan.Select (c, _) | Plan.Project (c, _) | Plan.Sort (c, _) | Plan.Dedup c
  | Plan.Submit (_, c) ->
    subject c
  | Plan.Join _ | Plan.Union _ | Plan.Aggregate _ -> None

let bind (bs : bindings) var v : bindings option =
  match List.assoc_opt var bs with
  | None -> Some ((var, v) :: bs)
  | Some existing -> if existing = v then Some bs else None

(* Match an operand pattern against child [i] of the node (or, for scan
   heads, against the scanned collection). A literal name also matches
   sub-interfaces of that collection ([is_instance], interface
   inheritance). *)
let match_operand ~is_instance bs (pat : Ast.arg_pat) (op : operand)
    (plan_of : operand -> Plan.t option) =
  match pat with
  | Ast.Pvar v -> bind bs v (Boperand op)
  | Ast.Pname n ->
    let subj =
      match op with
      | Base r -> Some r
      | Input _ -> Option.bind (plan_of op) subject
    in
    (match subj with
     | Some r when is_instance r n -> Some bs
     | _ -> None)
  | Ast.Pconst _ -> None

(* Match an attribute pattern against a qualified plan attribute. Literal
   names compare against the unqualified part (rules are written with the
   wrapper's attribute names, plans carry binding-qualified names). *)
let match_attr bs (pat : Ast.arg_pat) (qattr : string) =
  let base =
    match Plan.split_attr qattr with Some (_, a) -> a | None -> qattr
  in
  match pat with
  | Ast.Pvar v -> bind bs v (Battr base)
  | Ast.Pname n ->
    let n = match Plan.split_attr n with Some (_, a) -> a | None -> n in
    if String.equal n base then Some bs else None
  | Ast.Pconst _ -> None

let match_const bs (pat : Ast.arg_pat) (c : Constant.t) =
  match pat with
  | Ast.Pvar v -> bind bs v (Bconst c)
  | Ast.Pconst pc -> if Constant.equal pc c then Some bs else None
  | Ast.Pname _ -> None

let match_pred bs (pat : Ast.pred_pat) (p : Pred.t) =
  match pat with
  | Ast.Ppred_var v -> bind bs v (Bpred p)
  | Ast.Pcmp (l, op, r) ->
    (match p with
     | Pred.Cmp (a, pop, v) when pop = op ->
       Option.bind (match_attr bs l a) (fun bs -> match_const bs r v)
     | Pred.Attr_cmp (a, pop, b) when pop = op ->
       Option.bind (match_attr bs l a) (fun bs -> match_attr bs r b)
     | _ -> None)

(* The default instance relation: plain name equality (no inheritance). *)
let name_equal (r : Plan.collection_ref) n = String.equal r.Plan.collection n

(* Match a head pattern against a node. Returns variable bindings on
   success. [is_instance] extends literal collection matching to
   sub-interfaces. *)
let match_head ?(is_instance = name_equal) (h : Ast.head) (node : Plan.t) :
    bindings option =
  let match_operand = match_operand ~is_instance in
  let children = Array.of_list (Plan.children node) in
  let plan_of = function
    | Input i -> if i < Array.length children then Some children.(i) else None
    | Base _ -> None
  in
  let input i = Input i in
  match h, node with
  | Ast.Hscan pat, Plan.Scan r -> match_operand [] pat (Base r) plan_of
  | Ast.Hselect (c, pp), Plan.Select (_, p) ->
    Option.bind (match_operand [] c (input 0) plan_of) (fun bs -> match_pred bs pp p)
  | Ast.Hproject (c, a), Plan.Project (_, attrs) ->
    Option.bind (match_operand [] c (input 0) plan_of) (fun bs ->
        match a with
        | Ast.Pvar v -> bind bs v (Bname (String.concat "," attrs))
        | _ -> Some bs)
  | Ast.Hsort (c, a), Plan.Sort (_, keys) ->
    Option.bind (match_operand [] c (input 0) plan_of) (fun bs ->
        match a with
        | Ast.Pvar v -> bind bs v (Bname (String.concat "," (List.map fst keys)))
        | _ -> Some bs)
  | Ast.Hjoin (l, r, pp), Plan.Join (_, _, p) ->
    Option.bind (match_operand [] l (input 0) plan_of) (fun bs ->
        Option.bind (match_operand bs r (input 1) plan_of) (fun bs ->
            match_pred bs pp p))
  | Ast.Hunion (l, r), Plan.Union _ ->
    Option.bind (match_operand [] l (input 0) plan_of) (fun bs ->
        match_operand bs r (input 1) plan_of)
  | Ast.Hdedup c, Plan.Dedup _ -> match_operand [] c (input 0) plan_of
  | Ast.Haggregate (c, g), Plan.Aggregate (_, agg) ->
    Option.bind (match_operand [] c (input 0) plan_of) (fun bs ->
        match g with
        | Ast.Pvar v -> bind bs v (Bname (String.concat "," agg.Plan.group_by))
        | _ -> Some bs)
  | Ast.Hsubmit (w, c), Plan.Submit (src, _) ->
    let bs =
      match w with
      | Ast.Pvar v -> bind [] v (Bname src)
      | Ast.Pname n -> if String.equal n src then Some [] else None
      | Ast.Pconst _ -> None
    in
    Option.bind bs (fun bs -> match_operand bs c (input 0) plan_of)
  | _ -> None

(* Match a compiled rule against a node. *)
let matches ?is_instance (t : t) (node : Plan.t) : bindings option =
  match t.kind with
  | Pattern h -> match_head ?is_instance h node
  | Exact p -> if Plan.equal p node then Some [] else None

let operator_of_node = function
  | Plan.Scan _ -> "scan"
  | Plan.Select _ -> "select"
  | Plan.Project _ -> "project"
  | Plan.Sort _ -> "sort"
  | Plan.Join _ -> "join"
  | Plan.Union _ -> "union"
  | Plan.Dedup _ -> "dedup"
  | Plan.Aggregate _ -> "aggregate"
  | Plan.Submit _ -> "submit"

let operator (t : t) =
  match t.kind with
  | Pattern h -> Ast.head_operator h
  | Exact p -> operator_of_node p

let pp ppf (t : t) =
  let head ppf = function
    | Pattern h -> Pp.head ppf h
    | Exact p -> Fmt.pf ppf "exactly[%a]" Plan.pp p
  in
  Fmt.pf ppf "[%a/%s #%d] %a -> {%s}" Scope.pp t.scope t.source t.id head t.kind
    (String.concat ", " (List.map Ast.cost_var_name t.provides))
