(** Dynamic cost-formula extensions (paper §4.3.1): the cost model learns
    from executed subqueries. *)

open Disco_costlang
open Disco_algebra

(** - [Exact]: measured cost vectors are installed as query-scope rules
      matching their exact subplan — the HERMES style of historical costs;
      the next identical subquery is estimated with the real cost.
    - [Adjust]: the ratio measured/estimated TotalTime of each executed
      subquery updates a per-source multiplicative factor by exponential
      smoothing; the generic [submit] rule applies the factor through the
      [adjust(W)] context function, so all formulas sharing the parameter
      benefit at once — the paper's answer to HERMES' proliferation of
      statistical information. *)
type mode = Off | Exact | Adjust of { smoothing : float }

(** Feedback-driven statistics (§4.3, DESIGN.md §11), orthogonal to [mode]:
    estimated vs. measured cardinalities maintain per-predicate selectivity
    corrections ({!Registry.set_sel_fix}), and sustained misestimation bumps
    the model generation so cached plans are re-costed. *)
type feedback = {
  band : float;       (** drift when est/actual leaves [[1/band, band]] *)
  consecutive : int;  (** drifting observations in a row that trigger *)
  smoothing : float;  (** EWMA weight of the newest correction *)
}

val default_feedback : feedback
(** band 2.0, consecutive 3, smoothing 0.5. *)

type record = {
  plan : Plan.t;       (** the executed wrapper subplan (no submit node) *)
  source : string;
  measured : (Ast.cost_var * float) list;
  estimated_total : float;  (** the estimate made when the plan was chosen *)
  estimated_count : float option;
      (** predicted output cardinality when the plan was chosen; lets a
          snapshot replay ({!observe} per record) re-derive the same
          selectivity corrections the original observations produced *)
}

type t

val create : ?mode:mode -> Registry.t -> t

val set_mode : t -> mode -> unit

val mode : t -> mode

val set_feedback : t -> ?on_drift:(source:string -> unit) -> feedback option -> unit
(** Switch cardinality feedback on ([Some fb]) or off ([None]); resets drift
    streaks either way. [on_drift] runs after a drift-triggered
    {!Registry.invalidate}, with the drifting source — the mediator hooks
    histogram recalibration there. *)

val feedback : t -> feedback option

val records : t -> record list
(** Oldest first. *)

val observe :
  ?estimated_count:float ->
  t ->
  source:string ->
  plan:Plan.t ->
  measured:(Ast.cost_var * float) list ->
  estimated_total:float ->
  unit
(** Feed back the measured costs of an executed wrapper subquery. In
    [Adjust] mode, [estimated_total] must include the adjustment factor in
    force when the estimate was made (the mediator does this), so the
    smoothing converges. [estimated_count] is the predicted output
    cardinality of the subplan; when present (and feedback is on) it is
    compared with the measured [CountObject] to update the per-predicate
    selectivity correction of the subplan's outermost selection and its
    drift streak. *)

val forget : t -> unit
(** Drop all records, query-scope rules, adjustment factors, selectivity
    corrections and drift streaks. *)
