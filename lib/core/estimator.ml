(* The cost evaluation algorithm (paper §4.2, Fig 11).

   The paper describes a two-phase traversal: top-down association of cost
   formulas with nodes (propagating the list of variables each child must
   compute), then bottom-up evaluation. We implement the same dataflow
   demand-driven: requesting a variable of a node selects the most specific
   matching rules providing it, and evaluating their formulas recursively
   demands exactly the referenced child variables. The two optimizations of
   §4.2 fall out: only formulas computing required variables are invoked, and
   a child whose variables are never referenced (e.g. under a query-scope
   rule with constant formulas) is never visited.

   Conflicts — several formulas for the same variable at the same matching
   level — are resolved by evaluating all of them and keeping the lowest
   value (§4.2 step 3). The branch-and-bound extension of §4.3.2 aborts the
   estimation as soon as any computed TotalTime exceeds the best complete
   plan found so far. *)

open Disco_common
open Disco_algebra
open Disco_costlang

exception Aborted

type provenance = { rule_id : int; rule_scope : Scope.t; rule_source : string }

type ctx = {
  registry : Registry.t;
  abort_above : float option;
  evals : int ref;  (* number of formula evaluations performed *)
  shard : int;
      (* VM slot-cache shard this pass resolves through; the domain-pool
         slot number when estimating in parallel, 0 sequentially *)
}

type ann = {
  node : Plan.t;
  source : string;  (* source whose rules govern this node *)
  inputs : ann array;
  stats : Derive.t Lazy.t;
  matched : (Rule.t * Rule.bindings) list Lazy.t;  (* most specific first *)
  vars : (Ast.cost_var, float * provenance) Hashtbl.t;
  insts : (int, inst) Hashtbl.t;
  mutable in_progress : Ast.cost_var list;
}

(* Per-(node, rule) evaluation instance: body assignments are evaluated
   sequentially and cached, so locals (Fig 13's [CountPage]) and earlier
   results are visible to later formulas of the same body. *)
and inst = {
  rule : Rule.t;
  bindings : Rule.bindings;
  values : (string, Value.t) Hashtbl.t;
  mutable next_assign : int;
  mutable vmcache : Vm.ctx option;
      (* the VM evaluation context, allocated once per instance: its
         callbacks resolve through [vmpass], so a new estimation pass only
         repins the slot column and clears the dynamic-reference memo *)
  mutable vmpass : ctx option;
      (* the estimation pass the cached context is pinned to ([ctx] is
         created per [estimate] call, so comparing identity ensures the slot
         column is re-fetched under the current generation and a stale
         [abort_above]/[evals] is never used) *)
  mutable vmgen : int;
      (* registry generation the dynamic-reference memo was filled under;
         like the slot banks, the memo survives across passes and is dropped
         only when the generation moves *)
}

let make_ctx ?abort_above ?(evals = ref 0) ?(shard = 0) registry =
  { registry; abort_above; evals; shard }

(* --- Annotation construction (structure + derived statistics) ----------- *)

(* Memo of annotated subtrees, keyed on (rule-context source, canonical
   structural hash). Two structurally equal subtrees estimated under the same
   source context are estimation-equivalent while the registry is unchanged,
   so they can share one [ann] — and with it every cost variable already
   computed. This is the per-optimization cache of the subset-DP: candidate
   plans overlap massively (the same submit subtree appears under many join
   orders), and sharing annotations means the estimator never re-runs a
   formula on an already-costed subtree. A memo must not outlive a registry
   write (callers create one per optimization; cross-query reuse is
   [Plancache]'s job, guarded by the generation counter). *)
module Memo_tbl = Hashtbl.Make (struct
  type t = string * Plan.t

  let equal (s1, p1) (s2, p2) = String.equal s1 s2 && Plan.equal_structural p1 p2
  let hash (s, p) = (Hashtbl.hash s * 31) + Plan.hash p
end)

type memo = {
  table : ann Memo_tbl.t;
  mutable memo_hits : int;
  mutable memo_misses : int;
}

let new_memo () = { table = Memo_tbl.create 128; memo_hits = 0; memo_misses = 0 }

let memo_counters m = (m.memo_hits, m.memo_misses)

let node_source ~inherited (node : Plan.t) =
  match node with
  | Plan.Scan r -> r.Plan.source
  | Plan.Submit (src, _) -> src
  | _ -> inherited

let rec build ?memo registry ~source (node : Plan.t) : ann =
  let source = node_source ~inherited:source node in
  let construct () =
    let child_source =
      match node with Plan.Submit (src, _) -> src | _ -> source
    in
    let inputs =
      Array.of_list
        (List.map
           (fun c -> build ?memo registry ~source:child_source c)
           (Plan.children node))
    in
    let stats =
      lazy
        (Derive.of_node (Registry.catalog registry) node
           (Array.to_list (Array.map (fun a -> Lazy.force a.stats) inputs)))
    in
    { node;
      source;
      inputs;
      stats;
      matched = lazy (Registry.matching registry ~source node);
      vars = Hashtbl.create 8;
      insts = Hashtbl.create 8;
      in_progress = [] }
  in
  match memo with
  | None -> construct ()
  | Some m ->
    let key = (source, node) in
    (match Memo_tbl.find_opt m.table key with
     | Some ann ->
       m.memo_hits <- m.memo_hits + 1;
       ann
     | None ->
       m.memo_misses <- m.memo_misses + 1;
       let ann = construct () in
       Memo_tbl.add m.table key ann;
       ann)

let input_stats ann =
  Array.to_list (Array.map (fun a -> Lazy.force a.stats) ann.inputs)

(* --- Variable computation ------------------------------------------------ *)

let huge = 1e18

let rec require ctx ann (v : Ast.cost_var) : float =
  match Hashtbl.find_opt ann.vars v with
  | Some (x, _) -> x
  | None ->
    if List.mem v ann.in_progress then
      raise
        (Err.Eval_error
           (Fmt.str "circular dependency on %s at node %a" (Ast.cost_var_name v)
              Plan.pp ann.node));
    ann.in_progress <- v :: ann.in_progress;
    let result =
      Fun.protect
        ~finally:(fun () -> ann.in_progress <- List.tl ann.in_progress)
        (fun () -> compute ctx ann v)
    in
    Hashtbl.replace ann.vars v result;
    (match ctx.abort_above, v with
     | Some bound, Ast.Total_time when fst result > bound -> raise Aborted
     | _ -> ());
    fst result

(* Select the rules at the most specific matching level providing [v],
   evaluate each, keep the minimum (paper §4.2 steps 1 and 3). *)
and compute ctx ann (v : Ast.cost_var) : float * provenance =
  let provides (r : Rule.t) = List.mem v r.Rule.provides in
  let rec first_level = function
    | [] ->
      raise
        (Err.Eval_error
           (Fmt.str "no formula for %s at node %a (is the generic model registered?)"
              (Ast.cost_var_name v) Plan.pp ann.node))
    | (r, bs) :: rest ->
      if provides r then
        let same, _ =
          List.partition (fun (r', _) -> Rule.same_level r r' && provides r') rest
        in
        (r, bs) :: same
      else first_level rest
  in
  let candidates = first_level (Lazy.force ann.matched) in
  let evaluated =
    List.map
      (fun (r, bs) ->
        let x = eval_rule_var ctx ann r bs v in
        (x, { rule_id = r.Rule.id; rule_scope = r.Rule.scope; rule_source = r.Rule.source }))
      candidates
  in
  (* min-combining must prefer finite values: NaN compares false under [<],
     so a NaN produced by the first candidate (0/0, ln(0)*0 in a wrapper
     rule) would otherwise never be displaced by a later finite one *)
  List.fold_left
    (fun acc c ->
      let x = fst c and best = fst acc in
      if Float.is_nan best then if Float.is_nan x then acc else c
      else if x < best then c
      else acc)
    (List.hd evaluated) (List.tl evaluated)

(* Evaluate a rule's body up to (and including) the assignment of [v]. *)
and eval_rule_var ctx ann (rule : Rule.t) bindings (v : Ast.cost_var) : float =
  let inst =
    match Hashtbl.find_opt ann.insts rule.Rule.id with
    | Some i -> i
    | None ->
      let i =
        { rule; bindings; values = Hashtbl.create 8; next_assign = 0;
          vmcache = None; vmpass = None; vmgen = -1 }
      in
      Hashtbl.add ann.insts rule.Rule.id i;
      i
  in
  let body = Array.of_list rule.Rule.body in
  let wanted = Ast.cost_var_name v in
  let rec run () =
    match Hashtbl.find_opt inst.values wanted with
    | Some value -> Value.to_num value
    | None ->
      if inst.next_assign >= Array.length body then
        raise
          (Err.Eval_error
             (Fmt.str "rule #%d does not compute %s" rule.Rule.id wanted))
      else begin
        let target, code = body.(inst.next_assign) in
        incr ctx.evals;
        let value =
          match code with
          | Rule.Closure compiled -> compiled (eval_ctx ctx ann inst)
          | Rule.Prog p -> Vm.exec p (vm_ctx ctx ann inst)
        in
        Hashtbl.replace inst.values (Ast.target_name target) value;
        inst.next_assign <- inst.next_assign + 1;
        run ()
      end
  in
  run ()

(* --- Reference resolution and context functions -------------------------- *)

and operand_ann ann (op : Rule.operand) =
  match op with
  | Rule.Input i when i < Array.length ann.inputs -> Some ann.inputs.(i)
  | Rule.Input _ | Rule.Base _ -> None

(* Resolve a statistic or cost variable of an operand: a child's computed
   variables / derived attribute statistics, or a base collection's catalog
   entries. *)
and operand_path ctx ann (op : Rule.operand) (segs : string list) : Value.t =
  let fail msg = raise (Err.Eval_error msg) in
  match op, segs with
  | Rule.Base r, [ stat ] ->
    let e =
      Disco_catalog.Catalog.extent_stats (Registry.catalog ctx.registry)
        ~source:r.Plan.source r.Plan.collection
    in
    (match Registry.extent_stat e stat with
     | Some f -> Value.Vnum f
     | None ->
       fail
         (Fmt.str "statistic %S is not available on base collection %s" stat
            r.Plan.collection))
  | Rule.Base r, [ attr; stat ] ->
    let st =
      Disco_catalog.Catalog.attribute_stats (Registry.catalog ctx.registry)
        ~source:r.Plan.source ~collection:r.Plan.collection attr
    in
    (match Registry.attr_stat_value (Derive.of_catalog_attr st) stat with
     | Some v -> v
     | None -> fail (Fmt.str "unknown attribute statistic %S" stat))
  | Rule.Input _, [ stat ] ->
    (match operand_ann ann op with
     | None -> fail "operand out of range"
     | Some child ->
       (match Ast.cost_var_of_name stat with
        | Some cv -> Value.Vnum (require ctx child cv)
        | None ->
          (match stat with
           | "ObjectSize" ->
             let total = require ctx child Ast.Total_size in
             let count = require ctx child Ast.Count_object in
             Value.Vnum (total /. Float.max count 1.)
           | _ -> fail (Fmt.str "unknown operand statistic %S" stat))))
  | Rule.Input _, [ attr; stat ] ->
    (match operand_ann ann op with
     | None -> fail "operand out of range"
     | Some child ->
       (match Derive.find_loose (Lazy.force child.stats) attr with
        | None ->
          fail (Fmt.str "attribute %S not found in operand result" attr)
        | Some s ->
          (match Registry.attr_stat_value s stat with
           | Some v -> v
           | None -> fail (Fmt.str "unknown attribute statistic %S" stat))))
  | _, _ ->
    fail (Fmt.str "cannot resolve path .%s on operand" (String.concat "." segs))

(* Substitute a path segment that is a bound head variable. *)
and subst_segment bindings seg =
  match List.assoc_opt seg bindings with
  | Some (Rule.Battr a) -> a
  | Some (Rule.Bname n) -> n
  | _ -> seg

and resolve_ref ctx ann (inst : inst) (path : string list) : Value.t =
  let bindings = inst.bindings in
  match path with
  | [] -> raise (Err.Eval_error "empty reference")
  | [ x ] ->
    (* 1. body-local / already-computed result of this rule instance *)
    (match Hashtbl.find_opt inst.values x with
     | Some v -> v
     | None ->
       (* 2. the node's own cost variable (possibly from another rule) *)
       (match Ast.cost_var_of_name x with
        | Some cv -> Value.Vnum (require ctx ann cv)
        | None ->
          (* 3. head binding *)
          (match List.assoc_opt x bindings with
           | Some (Rule.Bconst c) -> Value.Vconst c
           | Some (Rule.Battr a) -> Value.Vname a
           | Some (Rule.Bpred p) -> Value.Vpred p
           | Some (Rule.Bname n) -> Value.Vconst (Constant.String n)
           | Some (Rule.Boperand _) ->
             raise
               (Err.Eval_error
                  (Fmt.str "operand %S used as a plain value in a formula" x))
           | None ->
             (* 4. wrapper/default parameter *)
             (match
                Registry.lookup_let_or_default ctx.registry
                  ~source:inst.rule.Rule.source x
              with
              | Some v -> v
              | None ->
                (* 5. otherwise, a literal attribute/collection name used as
                   a function argument, e.g. [selectivity(salary, V)] *)
                Value.Vname x))))
  | x :: rest ->
    (match List.assoc_opt x bindings with
     | Some (Rule.Boperand op) ->
       operand_path ctx ann op (List.map (subst_segment bindings) rest)
     | Some (Rule.Battr a) ->
       (* A.Stat: statistic of a bound attribute, searched in the inputs *)
       let stats = input_stats ann in
       (match
          List.fold_left
            (fun acc s ->
              match acc with Some _ -> acc | None -> Derive.find_loose s a)
            None stats
        with
        | Some s ->
          (match Registry.attr_stat_value s (String.concat "." rest) with
           | Some v -> v
           | None ->
             raise
               (Err.Eval_error
                  (Fmt.str "unknown statistic %S of attribute %S"
                     (String.concat "." rest) a)))
        | None ->
          raise (Err.Eval_error (Fmt.str "attribute %S not found in inputs" a)))
     | _ ->
       (* literal collection name resolved against the node's source *)
       let path = x :: List.map (subst_segment bindings) rest in
       (match Registry.catalog_path ctx.registry ~source:ann.source path with
        | Some v -> v
        | None ->
          (match
             Registry.catalog_path ctx.registry ~source:inst.rule.Rule.source path
           with
           | Some v -> v
           | None ->
             raise
               (Err.Eval_error
                  (Fmt.str "cannot resolve %S" (String.concat "." path))))))

(* Context functions: these need the node's inputs or the registry, so they
   live here rather than in [Builtins]. *)
and context_call ctx ann name (args : Value.t list) : Value.t option =
  let stats () = input_stats ann in
  let apply_sel fn = Registry.adt_selectivity ctx.registry fn in
  match name, args with
  | "sel", [ Value.Vpred p ] ->
    let s = Selest.of_pred ~apply_sel (stats ()) p in
    (* feedback-driven correction (§4.3): exactly 1.0 when none installed,
       keeping the no-feedback path bit-identical *)
    let c = Registry.sel_fix ctx.registry ~source:ann.source (Pred.to_string p) in
    let s = if c = 1.0 then s else Float.min 1. (Float.max 0. (s *. c)) in
    Some (Value.Vnum s)
  | "adtcost", [ Value.Vpred p ] ->
    (* total exported per-object cost of the ADT operations in [p];
       operations without an exported cost count as free, which is exactly
       the misestimate the export fixes (paper §7) *)
    let cost =
      List.fold_left
        (fun acc fn -> acc +. Option.value ~default:0. (Registry.adt_cost ctx.registry fn))
        0. (Pred.adt_operations p)
    in
    Some (Value.Vnum cost)
  | "selectivity", [ Value.Vname a; Value.Vconst v ] ->
    Some (Value.Vnum (Selest.of_cmp (stats ()) a Pred.Eq v))
  | "indexed", [ Value.Vpred p ] -> Some (Value.Vnum (Selest.indexed (stats ()) p))
  | "indexed", [ Value.Vname a ] ->
    let v =
      match
        List.fold_left
          (fun acc s -> match acc with Some _ -> acc | None -> Derive.find_loose s a)
          None (stats ())
      with
      | Some s when s.Derive.indexed -> 1.
      | _ -> 0.
    in
    Some (Value.Vnum v)
  | "rindexed", [ Value.Vpred p ] -> Some (Value.Vnum (Selest.rindexed (stats ()) p))
  | "nnames", [ Value.Vconst (Constant.String s) ] ->
    let n = if String.length s = 0 then 0 else List.length (String.split_on_char ',' s) in
    Some (Value.Vnum (float_of_int n))
  | "groupcard", [ Value.Vconst (Constant.String s) ] ->
    let names = if String.length s = 0 then [] else String.split_on_char ',' s in
    let first = match stats () with st :: _ -> st | [] -> [] in
    let card =
      List.fold_left
        (fun acc a ->
          match Derive.find_loose first a with
          | Some st -> acc *. Float.max st.Derive.distinct 1.
          | None -> acc *. 10.)
        1. names
    in
    let input_count =
      if Array.length ann.inputs > 0 then require ctx ann.inputs.(0) Ast.Count_object
      else card
    in
    Some (Value.Vnum (Float.min card (Float.max input_count 1.)))
  | "adjust", [ Value.Vconst (Constant.String w) ] ->
    Some (Value.Vnum (Registry.adjust ctx.registry ~source:w))
  | _ -> None

and call_function ctx ann (inst : inst) name args : Value.t =
  (* wrapper-defined functions shadow context functions and builtins *)
  match
    Registry.lookup_def_or_default ctx.registry ~source:inst.rule.Rule.source name
  with
  | Some d -> Compile.apply_def d (eval_ctx ctx ann inst) args
  | None ->
    (match Builtins.find name with
     | Some f -> f args
     | None ->
       (match context_call ctx ann name args with
        | Some v -> v
        | None -> raise (Err.Eval_error (Fmt.str "unknown function %S" name))))

and eval_ctx ctx ann (inst : inst) : Compile.ctx =
  { Compile.resolve_ref = (fun path -> resolve_ref ctx ann inst path);
    call = (fun name args -> call_function ctx ann inst name args) }

(* Resolve slot [i] of the rule's pre-resolution table: static references go
   through the regular resolver once per (generation, evaluation source) and
   are served from the cache afterwards. A registry write bumps the
   generation, so stale statistics are never served (paper §4.3: calibration
   and historical feedback must show up in the next estimate). *)
and vm_ctx ctx ann (inst : inst) : Vm.ctx =
  (* allocated once per instance, repinned once per estimation pass: the
     slot column is fetched under the current generation, and the
     dynamic-reference memo is dropped if the generation moved since it was
     filled. Within a generation each distinct non-volatile path resolves
     once per instance, since resolution is deterministic there (bindings
     fixed, derived statistics and child cost variables memoized, and
     anything assignment-dependent is classified volatile and never
     memoized), where the closure backend re-resolves every occurrence.
     Failed resolutions are not memoized. The callbacks reach the pass
     state through [inst.vmpass], so repinning allocates nothing. *)
  let pin () =
    let slots = inst.rule.Rule.slots in
    inst.vmpass <- Some ctx;
    if Vm.slot_count slots = 0 then Vm.empty_bank
    else
      Vm.slot_cache slots ~shard:ctx.shard
        ~generation:(Registry.generation ctx.registry)
        ~source:ann.source
  in
  match inst.vmcache with
  | Some vc ->
    (match inst.vmpass with
     | Some c0 when c0 == ctx -> vc
     | _ ->
       vc.Vm.bank <- pin ();
       let gen = Registry.generation ctx.registry in
       if inst.vmgen <> gen then begin
         Vm.clear_bank vc.Vm.dmemo;
         inst.vmgen <- gen
       end;
       vc)
  | None ->
    let slots = inst.rule.Rule.slots in
    let cur () =
      match inst.vmpass with Some c -> c | None -> assert false
    in
    let vc =
      { Vm.bank = pin ();
        dmemo =
          (let n = Vm.dyn_count slots in
           if n = 0 then Vm.empty_bank else Vm.new_bank n);
        slots;
        resolve = (fun path -> resolve_ref (cur ()) ann inst path);
        call = (fun name args -> call_function (cur ()) ann inst name args) }
    in
    inst.vmgen <- Registry.generation ctx.registry;
    inst.vmcache <- Some vc;
    vc

(* --- Public API ----------------------------------------------------------- *)

(* Estimate a plan: returns the annotated tree with at least [require]d
   variables computed at the root. [source] sets the rule-lookup context of
   the root (default: the mediator; pass a wrapper name to estimate a subplan
   as the wrapper executes it). *)
let estimate ?abort_above ?evals ?memo ?shard
    ?(require_vars = Ast.all_cost_vars)
    ?(source = Registry.mediator_source) registry plan =
  let ctx = make_ctx ?abort_above ?evals ?shard registry in
  let ann = build ?memo registry ~source plan in
  List.iter (fun v -> ignore (require ctx ann v)) require_vars;
  ann

let var ann v = Option.map fst (Hashtbl.find_opt ann.vars v)

let provenance ann v = Option.map snd (Hashtbl.find_opt ann.vars v)

let total_time ann =
  match var ann Ast.Total_time with
  | Some t -> t
  | None -> raise (Err.Eval_error "TotalTime was not computed")

let count_object ann =
  match var ann Ast.Count_object with
  | Some t -> t
  | None -> raise (Err.Eval_error "CountObject was not computed")

(* Multi-line explain report: each node with its computed variables and the
   scope/source of the rule that supplied them. *)
let report ann =
  let buf = Buffer.create 256 in
  let rec go indent a =
    let pad = String.make indent ' ' in
    let op = Rule.operator_of_node a.node in
    let detail =
      match a.node with
      | Plan.Scan r -> Fmt.str " %s.%s" r.Plan.source r.Plan.collection
      | Plan.Select (_, p) -> Fmt.str " [%a]" Pred.pp p
      | Plan.Join (_, _, p) -> Fmt.str " [%a]" Pred.pp p
      | Plan.Submit (s, _) -> Fmt.str " -> %s" s
      | _ -> ""
    in
    Buffer.add_string buf (Fmt.str "%s%s%s" pad op detail);
    let vars =
      List.filter_map
        (fun v ->
          match Hashtbl.find_opt a.vars v with
          | Some (x, p) ->
            Some
              (Fmt.str "%s=%.1f (%s)" (Ast.cost_var_name v) x
                 (Scope.to_string p.rule_scope))
          | None -> None)
        Ast.all_cost_vars
    in
    if vars <> [] then Buffer.add_string buf (" | " ^ String.concat " " vars);
    Buffer.add_char buf '\n';
    Array.iter (go (indent + 2)) a.inputs
  in
  go 0 ann;
  Buffer.contents buf

let _ = huge (* referenced by documentation; keeps the sentinel close by *)
