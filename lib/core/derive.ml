(* Attribute-level statistics of intermediate results.

   The five cost variables of a node are rule-driven; attribute statistics
   (Indexed, CountDistinct, Min, Max) of intermediate results are derived
   structurally by the mediator so that formulas such as [C.id.Min] or the
   context functions [sel]/[indexed] are meaningful on any operand. Scans
   read the catalog; selections narrow distinct/min/max; every non-scan
   operator clears [Indexed] (an operator's output is a stream, not an
   indexed extent). *)

open Disco_common
open Disco_catalog
open Disco_algebra

type attr_stat = {
  indexed : bool;
  distinct : float;
  min : Constant.t;
  max : Constant.t;
  hist : Histogram.t option;
}

(* Qualified attribute name -> statistics. *)
type t = (string * attr_stat) list

let default_stat =
  { indexed = false;
    distinct = 10.;
    min = Constant.Null;
    max = Constant.Null;
    hist = None }

let find (t : t) qname = List.assoc_opt qname t

(* Find by unqualified name when no qualified entry matches; supports rules
   written with bare attribute names such as [id]. *)
let find_loose (t : t) name =
  match find t name with
  | Some s -> Some s
  | None ->
    List.find_opt
      (fun (q, _) ->
        match Plan.split_attr q with
        | Some (_, a) -> String.equal a name
        | None -> String.equal q name)
      t
    |> Option.map snd

let of_catalog_attr (st : Stats.attribute) =
  { indexed = st.Stats.indexed;
    distinct = float_of_int (max st.Stats.count_distinct 1);
    min = st.Stats.min;
    max = st.Stats.max;
    hist = st.Stats.histogram }

let clear_indexed (t : t) =
  List.map (fun (n, s) -> (n, { s with indexed = false })) t

(* Narrow the statistics of [t] by one atomic comparison. *)
let narrow_cmp (t : t) attr (op : Pred.cmp) v =
  let update s =
    match op with
    | Pred.Eq -> { s with distinct = 1.; min = v; max = v; hist = None }
    | Pred.Ne -> { s with distinct = Float.max 1. (s.distinct -. 1.) }
    | Pred.Lt | Pred.Le ->
      let frac =
        Option.value ~default:0.5 (Constant.fraction ~min:s.min ~max:s.max v)
      in
      let hist = Option.bind s.hist (fun h -> Histogram.narrow_le h v) in
      { s with distinct = Float.max 1. (s.distinct *. frac); max = v; hist }
    | Pred.Gt | Pred.Ge ->
      let frac =
        Option.value ~default:0.5 (Constant.fraction ~min:s.min ~max:s.max v)
      in
      let hist = Option.bind s.hist (fun h -> Histogram.narrow_ge h v) in
      { s with distinct = Float.max 1. (s.distinct *. (1. -. frac)); min = v; hist }
  in
  List.map (fun (n, s) -> if String.equal n attr then (n, update s) else (n, s)) t

let rec narrow_pred (t : t) (p : Pred.t) =
  match p with
  | Pred.Cmp (a, op, v) -> narrow_cmp t a op v
  | Pred.And (p, q) -> narrow_pred (narrow_pred t p) q
  | Pred.Or _ | Pred.Not _ | Pred.Attr_cmp _ | Pred.Apply _ | Pred.True -> t

(* Derived statistics of one node given its children's. *)
let of_node (catalog : Catalog.t) (node : Plan.t) (children : t list) : t =
  let child i = try List.nth children i with Failure _ -> [] in
  match node with
  | Plan.Scan r ->
    let entry = Catalog.find_collection catalog ~source:r.source r.collection in
    List.map
      (fun (a : Schema.attribute) ->
        let st =
          Catalog.attribute_stats catalog ~source:r.source ~collection:r.collection
            a.Schema.attr_name
        in
        (r.binding ^ "." ^ a.Schema.attr_name, of_catalog_attr st))
      entry.Catalog.schema.Schema.attributes
  | Plan.Select (_, p) -> clear_indexed (narrow_pred (child 0) p)
  | Plan.Project (_, attrs) ->
    List.filter (fun (n, _) -> List.mem n attrs) (child 0)
  | Plan.Sort _ | Plan.Dedup _ -> clear_indexed (child 0)
  | Plan.Submit _ -> clear_indexed (child 0)
  | Plan.Join (_, _, p) ->
    let merged = child 0 @ child 1 in
    clear_indexed (narrow_pred merged p)
  | Plan.Union _ -> clear_indexed (child 0)
  | Plan.Aggregate (_, a) ->
    let groups = List.filter (fun (n, _) -> List.mem n a.Plan.group_by) (child 0) in
    let outs = List.map (fun (_, _, o) -> (o, default_stat)) a.Plan.aggs in
    clear_indexed groups @ outs

let pp ppf (t : t) =
  List.iter
    (fun (n, s) ->
      Fmt.pf ppf "%s{idx=%b dist=%.0f min=%a max=%a} " n s.indexed s.distinct
        Constant.pp s.min Constant.pp s.max)
    t
