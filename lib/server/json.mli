(** Minimal JSON values for the server's line-delimited protocol: printer
    and parser, no external dependency. Floats print with ["%.17g"], so a
    value round-trips bit-identically through the wire; NaN and infinities
    (unrepresentable in JSON) print as [null]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** One line, no pretty-printing (the protocol is line-delimited). *)

val parse : string -> (t, string) result

exception Parse_error of string

val parse_exn : string -> t
(** @raise Parse_error on malformed input. *)

(** {1 Accessors} ([None] on wrong shape) *)

val member : string -> t -> t option
val string_member : string -> t -> string option

val float_member : string -> t -> float option
(** Accepts [Int] too (coerced). *)

val int_member : string -> t -> int option
