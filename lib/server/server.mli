(** The persistent multi-tenant federation server behind [disco serve].

    One process owns one {!Disco_mediator.Mediator.t}. Client connections
    speak the line-delimited JSON {!Protocol} (plus plain [GET /health] /
    [GET /metrics] for curl). Queries pass the bounded {!Admission} queue —
    a full queue is an immediate [rejected/queue_full] answer, the server's
    backpressure point — and execute serialized on an internal lock (intra-
    query parallelism comes from the mediator's domain pool), which keeps
    server answers bit-identical to one-shot runs. Each tenant gets its own
    history partition; catalog, plan cache and breaker state are shared.
    With a snapshot path configured, learned state (histories, adjustment
    factors, the simulated clock) persists across restarts. *)

open Disco_mediator

type addr = Unix_socket of string | Tcp of { host : string; port : int }

type config = {
  addr : addr;
  queue_depth : int;           (** admission bound (≥ 1) *)
  workers : int;               (** dequeueing threads (≥ 1) *)
  default_deadline_ms : float option;
      (** applied to queries that set no [deadline_ms] of their own *)
  snapshot_path : string option;
  snapshot_every : int;
      (** executed queries between periodic snapshots; [0] disables the
          period (explicit [{"op":"snapshot"}] and shutdown still save) *)
  verify : bool;
      (** whole-plan verification at query admission
          ({!Mediator.run_query}'s [verify]): an invalid chosen plan is
          rejected with the typed [invalid_plan] protocol error instead of
          executed *)
}

val default_config : addr -> config
(** queue 64, 2 workers, no deadline, no snapshotting, verification on. *)

type t

val create : ?config:config -> Mediator.t -> t
(** The mediator must already have its wrappers registered. *)

val start : t -> unit
(** Restore the snapshot (if configured and present), bind, and spawn the
    accept loop and workers. Returns immediately. *)

val stop : t -> unit
(** Stop accepting, drain the admission queue, join the workers, close
    client connections, and take a final snapshot. Idempotent. *)

val running : t -> bool

val wait : t -> unit
(** Block until {!stop} — the foreground [disco serve] loop. *)

val save_snapshot : t -> string option
(** Snapshot now; [None] when no path is configured. *)

val metrics_json : t -> Json.t
val health_json : t -> Json.t

val mediator : t -> Mediator.t
val metrics : t -> Metrics.t
val admission_counters : t -> Admission.counters
val config : t -> config
