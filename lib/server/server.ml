(* disco serve: the long-running multi-tenant federation front end.

   One process owns one mediator. Each client connection gets a reader
   thread that parses line-delimited JSON requests; queries pass through
   the bounded {!Admission} queue (backpressure: a full queue is an
   immediate structured rejection, not unbounded latency) into a small
   worker pool. Workers serialize execution on [exec_lock] — [run_query]
   mutates the simulated clock, wrapper buffers and the active history
   partition, so queries are sequential at the top while each one still
   fans out over the PR 5 domain pool inside. That serialization is also
   what makes server answers bit-identical to one-shot runs.

   Multi-tenancy is history partitioning: each tenant gets its own
   {!History.t} (created on first use or restored from a snapshot), swapped
   in under [exec_lock] before the query runs. Tenants share the catalog,
   the plan cache, breaker state and registry-level statistics feedback —
   the mediator is common infrastructure; what is isolated is whose
   measured traffic trains which historical-cost partition.

   Observability: [{"op":"metrics"}] / [{"op":"health"}] over the
   protocol, or plain [GET /metrics] / [GET /health] on the same socket
   for curl. Deadlines are wall-clock budgets from receipt; a query whose
   deadline lapses while queued is rejected without execution. *)

open Disco_core
open Disco_mediator

let src = Logs.Src.create "disco.server" ~doc:"federation server"

module Log = (val Logs.src_log src : Logs.LOG)

type addr = Unix_socket of string | Tcp of { host : string; port : int }

type config = {
  addr : addr;
  queue_depth : int;
  workers : int;
  default_deadline_ms : float option;
  snapshot_path : string option;
  snapshot_every : int;
  verify : bool;
      (* whole-plan verification at query admission: an invalid chosen plan
         is rejected with a typed protocol error instead of executed *)
}

let default_config addr =
  { addr;
    queue_depth = 64;
    workers = 2;
    default_deadline_ms = None;
    snapshot_path = None;
    snapshot_every = 32;
    verify = true }

(* A connection is shared between its reader thread and any queued jobs
   still carrying replies to it; the fd closes when the last reference
   drops, so a worker can never write into a recycled descriptor. *)
type conn = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
  wlock : Mutex.t;
  conn_lock : Mutex.t;
  mutable refs : int;
  mutable fd_closed : bool;
}

type job = {
  id : Json.t;
  tenant : string;
  sql : string;
  objective : Optimizer.objective;
  deadline : float option;  (* absolute wall-clock seconds *)
  received_at : float;
  conn : conn;
}

type t = {
  med : Mediator.t;
  config : config;
  queue : job Admission.t;
  metrics : Metrics.t;
  tenants : (string, History.t) Hashtbl.t;
  tenants_lock : Mutex.t;
  exec_lock : Mutex.t;  (* serializes set_history + run_query + snapshot *)
  mutable listen_fd : Unix.file_descr option;
  mutable running : bool;
  mutable accept_thread : Thread.t option;
  mutable worker_threads : Thread.t list;
  mutable conns : conn list;  (* open connections, for shutdown *)
  conns_lock : Mutex.t;
  mutable executed : int;  (* queries finished, drives periodic snapshots *)
  mutable invalid_plans : int;  (* queries rejected by plan verification *)
}

(* --- connections ------------------------------------------------------- *)

let conn_of_fd fd =
  { fd;
    ic = Unix.in_channel_of_descr fd;
    oc = Unix.out_channel_of_descr fd;
    wlock = Mutex.create ();
    conn_lock = Mutex.create ();
    refs = 1;  (* the reader thread's reference *)
    fd_closed = false }

let conn_incref c = Mutex.protect c.conn_lock (fun () -> c.refs <- c.refs + 1)

let conn_decref t c =
  let close_now =
    Mutex.protect c.conn_lock (fun () ->
        c.refs <- c.refs - 1;
        if c.refs = 0 && not c.fd_closed then begin
          c.fd_closed <- true;
          true
        end
        else false)
  in
  if close_now then begin
    (try Unix.close c.fd with Unix.Unix_error _ -> ());
    Mutex.protect t.conns_lock (fun () ->
        t.conns <- List.filter (fun c' -> c' != c) t.conns)
  end

let send_line c (j : Json.t) =
  let line = Json.to_string j ^ "\n" in
  Mutex.protect c.wlock (fun () ->
      try
        output_string c.oc line;
        flush c.oc
      with Sys_error _ | Unix.Unix_error _ -> ())
  (* a vanished client is its own problem; the server carries on *)

let send_raw c (s : string) =
  Mutex.protect c.wlock (fun () ->
      try
        output_string c.oc s;
        flush c.oc
      with Sys_error _ | Unix.Unix_error _ -> ())

(* --- tenants ----------------------------------------------------------- *)

let tenant_history t tenant =
  Mutex.protect t.tenants_lock (fun () ->
      match Hashtbl.find_opt t.tenants tenant with
      | Some h -> h
      | None ->
        let h = Mediator.fresh_history t.med in
        Hashtbl.replace t.tenants tenant h;
        h)

let tenant_list t =
  Mutex.protect t.tenants_lock (fun () ->
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.tenants [])

(* --- snapshots --------------------------------------------------------- *)

let save_snapshot_locked t path =
  let s = Snapshot.capture t.med ~tenants:(tenant_list t) in
  Snapshot.save ~path s;
  Log.debug (fun m ->
      m "snapshot: %d tenants to %s" (List.length s.Snapshot.tenants) path)

let save_snapshot t =
  match t.config.snapshot_path with
  | None -> None
  | Some path ->
    Mutex.protect t.exec_lock (fun () -> save_snapshot_locked t path);
    Some path

let restore_snapshot t =
  match t.config.snapshot_path with
  | None -> false
  | Some path ->
    (match Snapshot.load ~path with
     | Error e ->
       if Sys.file_exists path then
         Log.warn (fun m -> m "ignoring snapshot %s: %s" path e);
       false
     | Ok s ->
       let tenants =
         Snapshot.restore t.med
           ~fresh_tenant:(fun _ -> Mediator.fresh_history t.med)
           s
       in
       Mutex.protect t.tenants_lock (fun () ->
           List.iter (fun (name, h) -> Hashtbl.replace t.tenants name h) tenants);
       Log.info (fun m ->
           m "warm start: %d tenants, %d records from %s"
             (List.length tenants)
             (List.fold_left
                (fun acc (_, h) -> acc + List.length (History.records h))
                0 tenants)
             path);
       true)

(* --- observability ----------------------------------------------------- *)

let metrics_json t : Json.t =
  let m = Metrics.snapshot t.metrics in
  let a = Admission.counters t.queue in
  let pc = Plancache.counters (Mediator.plancache t.med) in
  let os = Mediator.optimizer_stats t.med in
  let tenants = tenant_list t in
  let history_records =
    List.fold_left (fun acc (_, h) -> acc + List.length (History.records h)) 0 tenants
  in
  Json.Obj
    [ ("status", Json.String "ok");
      ("server", Metrics.to_json m);
      ( "admission",
        Json.Obj
          [ ("depth", Json.Int (Admission.depth t.queue));
            ("queued", Json.Int (Admission.length t.queue));
            ("pushed", Json.Int a.Admission.pushed);
            ("rejected", Json.Int a.Admission.rejected);
            ("popped", Json.Int a.Admission.popped) ] );
      ( "plancache",
        Json.Obj
          [ ("enabled", Json.Bool (Mediator.cache_enabled t.med));
            ("hits", Json.Int pc.Plancache.hits);
            ("misses", Json.Int pc.Plancache.misses);
            ("stale", Json.Int pc.Plancache.stale);
            ("evictions", Json.Int pc.Plancache.evictions);
            ("entries", Json.Int pc.Plancache.entries);
            ("verify_rejects", Json.Int pc.Plancache.verify_rejects) ] );
      ( "verify",
        Json.Obj
          [ ("enabled", Json.Bool t.config.verify);
            ("invalid_plans", Json.Int t.invalid_plans) ] );
      ( "stats",
        Json.Obj
          [ ( "feedback",
              Json.Bool
                (match Mediator.stats_mode t.med with
                 | Mediator.Stats_off -> false
                 | Mediator.Stats_feedback _ -> true) );
            ("generation", Json.Int (Registry.generation (Mediator.registry t.med)));
            ("history_records", Json.Int history_records);
            ("tenants", Json.Int (List.length tenants)) ] );
      (* cumulative plan-search cost (DESIGN.md §15): which enumeration
         engine runs and how much work it does per query shape *)
      ( "optimizer",
        Json.Obj
          [ ( "enum_mode",
              Json.String
                (Optimizer.enum_mode_to_string (Mediator.enum_mode t.med)) );
            ("enum_threshold", Json.Int (Mediator.enum_threshold t.med));
            ("plans_considered", Json.Int os.Optimizer.plans_considered);
            ("plans_aborted", Json.Int os.Optimizer.plans_aborted);
            ("csg_cmp_pairs", Json.Int os.Optimizer.csg_cmp_pairs);
            ("dp_entries", Json.Int os.Optimizer.dp_entries) ] ) ]

let health_json t : Json.t =
  Protocol.json_of_health ~now:(Mediator.now t.med)
    (Health.report (Mediator.health t.med))

(* --- query execution --------------------------------------------------- *)

let expired job ~now =
  match job.deadline with None -> false | Some d -> now >= d

let execute t (job : job) =
  let now = Unix.gettimeofday () in
  if expired job ~now then begin
    Metrics.on_rejected_deadline t.metrics;
    send_line job.conn (Protocol.rejected_response ~id:job.id ~reason:"deadline")
  end
  else begin
    let history = tenant_history t job.tenant in
    let response =
      Mutex.protect t.exec_lock (fun () ->
          Mediator.set_history t.med history;
          match
            Mediator.run_query ~objective:job.objective
              ~verify:t.config.verify t.med job.sql
          with
          | answer ->
            let wall_ms = (Unix.gettimeofday () -. job.received_at) *. 1000. in
            Metrics.on_completed t.metrics ~latency_ms:wall_ms;
            t.executed <- t.executed + 1;
            (match t.config.snapshot_path with
             | Some path
               when t.config.snapshot_every > 0
                    && t.executed mod t.config.snapshot_every = 0 ->
               (try save_snapshot_locked t path
                with e ->
                  Log.warn (fun m ->
                      m "snapshot failed: %s" (Printexc.to_string e)))
             | _ -> ());
            Protocol.ok_response ~id:job.id ~answer
              ~estimated_ms:(Estimator.total_time answer.Mediator.estimate)
              ~wall_ms
          | exception Mediator.Degraded report ->
            let wall_ms = (Unix.gettimeofday () -. job.received_at) *. 1000. in
            Metrics.on_degraded t.metrics ~latency_ms:wall_ms;
            t.executed <- t.executed + 1;
            Protocol.degraded_response ~id:job.id ~report ~wall_ms
          | exception Mediator.Invalid_plan findings ->
            let wall_ms = (Unix.gettimeofday () -. job.received_at) *. 1000. in
            Metrics.on_failed t.metrics ~latency_ms:wall_ms;
            t.invalid_plans <- t.invalid_plans + 1;
            Log.warn (fun m ->
                m "query %s rejected: invalid plan (%d findings)"
                  (Json.to_string job.id) (List.length findings));
            Protocol.invalid_plan_response ~id:job.id findings
          | exception e ->
            let wall_ms = (Unix.gettimeofday () -. job.received_at) *. 1000. in
            Metrics.on_failed t.metrics ~latency_ms:wall_ms;
            t.executed <- t.executed + 1;
            Protocol.error_response ~id:job.id (Printexc.to_string e))
    in
    send_line job.conn response
  end

let worker_loop t =
  let rec loop () =
    match Admission.pop t.queue with
    | None -> ()  (* closed and drained *)
    | Some job ->
      (try execute t job
       with e ->
         Log.err (fun m -> m "worker: %s" (Printexc.to_string e)));
      conn_decref t job.conn;
      loop ()
  in
  loop ()

(* --- request dispatch -------------------------------------------------- *)

let handle_query t conn ~id ~tenant ~sql ~objective ~deadline_ms =
  Metrics.on_received t.metrics;
  let received_at = Unix.gettimeofday () in
  let deadline_ms =
    match deadline_ms with None -> t.config.default_deadline_ms | d -> d
  in
  let deadline = Option.map (fun d -> received_at +. (d /. 1000.)) deadline_ms in
  let job = { id; tenant; sql; objective; deadline; received_at; conn } in
  conn_incref conn;
  if Admission.try_push t.queue job then Metrics.on_admitted t.metrics
  else begin
    conn_decref t conn;
    Metrics.on_rejected_queue t.metrics;
    send_line conn (Protocol.rejected_response ~id ~reason:"queue_full")
  end

let handle_request t conn line =
  match Protocol.parse_request line with
  | Error e ->
    send_line conn (Protocol.error_response ~id:Json.Null e);
    `Continue
  | Ok (Protocol.Query { id; tenant; sql; objective; deadline_ms }) ->
    handle_query t conn ~id ~tenant ~sql ~objective ~deadline_ms;
    `Continue
  | Ok Protocol.Metrics ->
    send_line conn (metrics_json t);
    `Continue
  | Ok Protocol.Health ->
    send_line conn (health_json t);
    `Continue
  | Ok Protocol.Snapshot ->
    (match save_snapshot t with
     | Some path ->
       send_line conn
         (Json.Obj
            [ ("status", Json.String "ok"); ("snapshot", Json.String path) ])
     | None ->
       send_line conn
         (Protocol.error_response ~id:Json.Null "no snapshot path configured"));
    `Continue
  | Ok Protocol.Ping ->
    send_line conn
      (Json.Obj [ ("status", Json.String "ok"); ("pong", Json.Bool true) ]);
    `Continue
  | Ok Protocol.Shutdown ->
    send_line conn (Json.Obj [ ("status", Json.String "ok") ]);
    `Shutdown
  | Ok (Protocol.Http_get path) ->
    (match path with
     | "/metrics" -> send_raw conn (Protocol.http_response (metrics_json t))
     | "/health" -> send_raw conn (Protocol.http_response (health_json t))
     | _ -> send_raw conn (Protocol.http_not_found path));
    `Close

(* --- lifecycle --------------------------------------------------------- *)

let stop t =
  if t.running then begin
    t.running <- false;
    (* the accept loop notices [running] within its select timeout; closing
       the listen socket also prevents any further accepts *)
    (match t.listen_fd with
     | Some fd ->
       t.listen_fd <- None;
       (try Unix.close fd with Unix.Unix_error _ -> ())
     | None -> ());
    Admission.close t.queue;
    List.iter Thread.join t.worker_threads;
    t.worker_threads <- [];
    (match t.accept_thread with
     | Some th ->
       t.accept_thread <- None;
       Thread.join th
     | None -> ());
    (* unblock lingering readers: their input_line hits EOF and they drop
       their connection reference *)
    let conns = Mutex.protect t.conns_lock (fun () -> t.conns) in
    List.iter
      (fun c ->
        try Unix.shutdown c.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
      conns;
    (match t.config.snapshot_path with
     | Some path ->
       (try Mutex.protect t.exec_lock (fun () -> save_snapshot_locked t path)
        with e ->
          Log.warn (fun m -> m "final snapshot failed: %s" (Printexc.to_string e)))
     | None -> ());
    Log.info (fun m -> m "server stopped")
  end

let reader_loop t conn =
  let rec loop () =
    match input_line conn.ic with
    | exception (End_of_file | Sys_error _ | Unix.Unix_error _) -> ()
    | line ->
      if String.trim line = "" then loop ()
      else
        (match handle_request t conn line with
         | `Continue -> if t.running then loop ()
         | `Close -> ()
         | `Shutdown ->
           (* a reader cannot join the thread pool it runs under *)
           ignore (Thread.create (fun () -> stop t) ()))
  in
  loop ();
  (try Unix.shutdown conn.fd Unix.SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ());
  conn_decref t conn

let accept_loop t listen_fd =
  while t.running do
    match Unix.select [ listen_fd ] [] [] 0.05 with
    | [], _, _ -> ()
    | _ :: _, _, _ ->
      (match Unix.accept listen_fd with
       | exception Unix.Unix_error _ -> ()
       | fd, _ ->
         let conn = conn_of_fd fd in
         Mutex.protect t.conns_lock (fun () -> t.conns <- conn :: t.conns);
         ignore (Thread.create (fun () -> reader_loop t conn) ()))
    | exception Unix.Unix_error _ -> ()
  done

let listen_socket = function
  | Unix_socket path ->
    if Sys.file_exists path then Sys.remove path;
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind fd (Unix.ADDR_UNIX path);
    Unix.listen fd 64;
    fd
  | Tcp { host; port } ->
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    let inet =
      try Unix.inet_addr_of_string host
      with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
    in
    Unix.bind fd (Unix.ADDR_INET (inet, port));
    Unix.listen fd 64;
    fd

let create ?(config = default_config (Unix_socket "/tmp/disco.sock")) med =
  { med;
    config;
    queue = Admission.create ~depth:config.queue_depth;
    metrics = Metrics.create ();
    tenants = Hashtbl.create 8;
    tenants_lock = Mutex.create ();
    exec_lock = Mutex.create ();
    listen_fd = None;
    running = false;
    accept_thread = None;
    worker_threads = [];
    conns = [];
    conns_lock = Mutex.create ();
    executed = 0;
    invalid_plans = 0 }

let start t =
  if t.running then invalid_arg "Server.start: already running";
  ignore (restore_snapshot t);
  let fd = listen_socket t.config.addr in
  t.listen_fd <- Some fd;
  t.running <- true;
  t.worker_threads <-
    List.init (max 1 t.config.workers) (fun _ ->
        Thread.create (fun () -> worker_loop t) ());
  t.accept_thread <- Some (Thread.create (fun () -> accept_loop t fd) ());
  Log.info (fun m ->
      m "serving on %s (%d workers, queue %d, %d domains)"
        (match t.config.addr with
         | Unix_socket p -> p
         | Tcp { host; port } -> Printf.sprintf "%s:%d" host port)
        (max 1 t.config.workers)
        (Admission.depth t.queue) (Mediator.domains t.med))

let running t = t.running
let mediator t = t.med
let metrics t = t.metrics
let admission_counters t = Admission.counters t.queue
let config t = t.config

let wait t =
  let rec loop () =
    if t.running then begin
      Thread.delay 0.1;
      loop ()
    end
  in
  loop ()
