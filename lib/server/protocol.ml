(* The serve-loop wire protocol: one JSON object per line, both ways.

   Requests:
     {"op":"query","sql":"select ...","id":7,"tenant":"acme",
      "objective":"total","deadline_ms":2000}     id/tenant/... optional
     {"op":"metrics"}   {"op":"health"}   {"op":"snapshot"}   {"op":"ping"}
     {"op":"shutdown"}

   Plain HTTP GETs are also accepted on the same socket for the two
   observability endpoints — [GET /health] and [GET /metrics] answer a
   minimal HTTP/1.0 response with the same JSON body and close the
   connection — so a curl-shaped client needs no protocol support.

   Responses to queries:
     {"id":7,"status":"ok","rows":[{...}],"row_count":3,
      "measured_ms":41.2,"estimated_ms":44.0,"replans":0,"wall_ms":1.9}
     {"id":7,"status":"degraded","failures":[...],"replans":2}
     {"id":7,"status":"rejected","reason":"queue_full"}
     {"id":7,"status":"rejected","reason":"deadline"}
     {"id":7,"status":"error","error":"..."} *)

open Disco_common
open Disco_exec
open Disco_mediator

type request =
  | Query of {
      id : Json.t;             (* echoed verbatim; Null when absent *)
      tenant : string;         (* "" = the anonymous default tenant *)
      sql : string;
      objective : Optimizer.objective;
      deadline_ms : float option;
    }
  | Metrics
  | Health
  | Snapshot
  | Ping
  | Shutdown
  | Http_get of string  (* path; answer HTTP-ish and close *)

let default_tenant = "default"

let parse_request (line : string) : (request, string) result =
  let line = String.trim line in
  if line = "" then Error "empty request"
  else if String.length line >= 4 && String.sub line 0 4 = "GET " then begin
    (* "GET /metrics HTTP/1.1" or just "GET /metrics" *)
    let rest = String.sub line 4 (String.length line - 4) in
    let path =
      match String.index_opt rest ' ' with
      | Some i -> String.sub rest 0 i
      | None -> rest
    in
    Ok (Http_get path)
  end
  else
    match Json.parse line with
    | Error e -> Error ("bad json: " ^ e)
    | Ok j ->
      (match Json.string_member "op" j with
       | Some "metrics" -> Ok Metrics
       | Some "health" -> Ok Health
       | Some "snapshot" -> Ok Snapshot
       | Some "ping" -> Ok Ping
       | Some "shutdown" -> Ok Shutdown
       | Some "query" | None ->
         (match Json.string_member "sql" j with
          | None -> Error "query without \"sql\""
          | Some sql ->
            let objective =
              match Json.string_member "objective" j with
              | Some "first" -> Optimizer.First_tuple
              | Some "total" | None -> Optimizer.Total_time
              | Some _ -> Optimizer.Total_time
            in
            Ok
              (Query
                 { id = Option.value ~default:Json.Null (Json.member "id" j);
                   tenant =
                     Option.value ~default:default_tenant
                       (Json.string_member "tenant" j);
                   sql;
                   objective;
                   deadline_ms = Json.float_member "deadline_ms" j }))
       | Some op -> Error (Printf.sprintf "unknown op %S" op))

(* --- response rendering -------------------------------------------------------- *)

let json_of_constant : Constant.t -> Json.t = function
  | Constant.Null -> Json.Null
  | Constant.Bool b -> Json.Bool b
  | Constant.Int i -> Json.Int i
  | Constant.Float f -> Json.Float f
  | Constant.String s -> Json.String s

let json_of_tuple (tu : Tuple.t) : Json.t =
  Json.Obj
    (Array.to_list
       (Array.map2
          (fun attr v -> (attr, json_of_constant v))
          tu.Tuple.attrs tu.Tuple.values))

let json_of_submit_failure (f : Run.submit_failure) : Json.t =
  Json.Obj
    [ ("source", Json.String f.Run.source);
      ("attempts", Json.Int f.Run.attempts);
      ("elapsed_ms", Json.Float f.Run.elapsed_ms);
      ("reason", Json.String (Run.reason_to_string f.Run.reason)) ]

let ok_response ~id ~(answer : Mediator.answer) ~estimated_ms ~wall_ms : Json.t =
  Json.Obj
    [ ("id", id);
      ("status", Json.String "ok");
      ("rows", Json.List (List.map json_of_tuple answer.Mediator.rows));
      ("row_count", Json.Int (List.length answer.Mediator.rows));
      ("measured_ms", Json.Float answer.Mediator.measured.Run.total_time);
      ("estimated_ms", Json.Float estimated_ms);
      ("replans", Json.Int answer.Mediator.replans);
      ("wall_ms", Json.Float wall_ms) ]

let degraded_response ~id ~(report : Mediator.report) ~wall_ms : Json.t =
  Json.Obj
    [ ("id", id);
      ("status", Json.String "degraded");
      ("replans", Json.Int report.Mediator.replans);
      ("failures",
       Json.List (List.map json_of_submit_failure report.Mediator.failures));
      ("unavailable",
       Json.List
         (List.map
            (fun (s, at) ->
              Json.Obj
                [ ("source", Json.String s); ("retry_at_ms", Json.Float at) ])
            report.Mediator.unavailable));
      ("wall_ms", Json.Float wall_ms) ]

let rejected_response ~id ~reason : Json.t =
  Json.Obj
    [ ("id", id);
      ("status", Json.String "rejected");
      ("reason", Json.String reason) ]

let json_of_plan_finding (f : Disco_analysis.Plancheck.finding) : Json.t =
  Json.Obj
    [ ("severity",
       Json.String
         (match f.Disco_analysis.Plancheck.severity with
          | Disco_analysis.Plancheck.Error -> "error"
          | Disco_analysis.Plancheck.Warning -> "warning"
          | Disco_analysis.Plancheck.Info -> "info"));
      ("tag", Json.String f.Disco_analysis.Plancheck.tag);
      ("source",
       match f.Disco_analysis.Plancheck.source with
       | Some s -> Json.String s
       | None -> Json.Null);
      ("path", Json.String f.Disco_analysis.Plancheck.path);
      ("msg", Json.String f.Disco_analysis.Plancheck.msg) ]

let invalid_plan_response ~id findings : Json.t =
  Json.Obj
    [ ("id", id);
      ("status", Json.String "rejected");
      ("reason", Json.String "invalid_plan");
      ("findings", Json.List (List.map json_of_plan_finding findings)) ]

let error_response ~id msg : Json.t =
  Json.Obj
    [ ("id", id); ("status", Json.String "error"); ("error", Json.String msg) ]

let json_of_health_state : Health.state -> Json.t = function
  | Health.Closed -> Json.String "closed"
  | Health.Open { until } ->
    Json.Obj [ ("open", Json.Obj [ ("until_ms", Json.Float until) ]) ]
  | Health.Half_open { probing } ->
    Json.Obj [ ("half_open", Json.Obj [ ("probing", Json.Bool probing) ]) ]

let json_of_health ~now (rows : Health.row list) : Json.t =
  Json.Obj
    [ ("status", Json.String "ok");
      ("clock_ms", Json.Float now);
      ("sources",
       Json.List
         (List.map
            (fun (r : Health.row) ->
              Json.Obj
                [ ("source", Json.String r.Health.source);
                  ("state", json_of_health_state r.Health.row_state);
                  ("ok", Json.Int r.Health.ok);
                  ("failed", Json.Int r.Health.failed);
                  ("retried", Json.Int r.Health.retried);
                  ("consecutive", Json.Int r.Health.consecutive);
                  ("probes", Json.Int r.Health.probed);
                  ("last_error",
                   match r.Health.error with
                   | None -> Json.Null
                   | Some e -> Json.String e) ])
            rows)) ]

let http_response (body : Json.t) : string =
  let payload = Json.to_string body ^ "\n" in
  Printf.sprintf
    "HTTP/1.0 200 OK\r\nContent-Type: application/json\r\nContent-Length: \
     %d\r\nConnection: close\r\n\r\n%s"
    (String.length payload) payload

let http_not_found (path : string) : string =
  let payload =
    Json.to_string
      (Json.Obj
         [ ("status", Json.String "error");
           ("error", Json.String (Printf.sprintf "no such endpoint %s" path)) ])
    ^ "\n"
  in
  Printf.sprintf
    "HTTP/1.0 404 Not Found\r\nContent-Type: application/json\r\n\
     Content-Length: %d\r\nConnection: close\r\n\r\n%s"
    (String.length payload) payload
