(** The serve-loop wire protocol: one JSON object per line in each
    direction, plus plain [GET /health] / [GET /metrics] HTTP lines for
    curl-shaped clients (answered with a minimal HTTP/1.0 response, then
    the connection closes). *)

open Disco_exec
open Disco_mediator

type request =
  | Query of {
      id : Json.t;    (** echoed verbatim in the response; [Null] if absent *)
      tenant : string;
      sql : string;
      objective : Optimizer.objective;
      deadline_ms : float option;
          (** wall-clock budget from receipt; expired-in-queue queries are
              rejected without execution *)
    }
  | Metrics
  | Health
  | Snapshot   (** persist a warm-restart snapshot now *)
  | Ping
  | Shutdown
  | Http_get of string

val default_tenant : string
(** ["default"] — the partition of requests that name no tenant. *)

val parse_request : string -> (request, string) result

(** {1 Response rendering} *)

val json_of_constant : Disco_common.Constant.t -> Json.t

val json_of_tuple : Tuple.t -> Json.t
(** An object mapping qualified attribute names to values — the row shape
    the differential tests compare bit-for-bit against locally executed
    queries. *)

val ok_response :
  id:Json.t -> answer:Mediator.answer -> estimated_ms:float -> wall_ms:float ->
  Json.t

val degraded_response : id:Json.t -> report:Mediator.report -> wall_ms:float -> Json.t

val rejected_response : id:Json.t -> reason:string -> Json.t
(** [reason] is ["queue_full"] (backpressure) or ["deadline"]. *)

val invalid_plan_response :
  id:Json.t -> Disco_analysis.Plancheck.finding list -> Json.t
(** The typed rejection for plans failing whole-plan verification:
    [{"status":"rejected","reason":"invalid_plan","findings":[...]}], each
    finding with its severity, tag, source and operator path. *)

val error_response : id:Json.t -> string -> Json.t

val json_of_health : now:float -> Health.row list -> Json.t

val http_response : Json.t -> string
(** A complete HTTP/1.0 [200] response with a JSON body. *)

val http_not_found : string -> string
