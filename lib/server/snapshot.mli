(** Warm-restart snapshots of the server's learned state: per-tenant
    history records, per-source adjustment factors and the simulated
    clock. {!restore} replays every record through
    {!Disco_core.History.observe} on a fresh mediator — re-deriving
    query-scope rules, selectivity corrections and drift streaks — then
    pins the adjustment factors and clock to their snapshotted values. *)

open Disco_core
open Disco_mediator

type tenant_state = { tenant : string; records : History.record list }

type state = {
  saved_at : float;   (** Unix time of the save *)
  clock_ms : float;   (** the mediator's simulated clock *)
  generation : int;   (** registry generation at save, informational *)
  tenants : tenant_state list;
  adjusts : (string * float) list;
}

val capture : Mediator.t -> tenants:(string * History.t) list -> state

val save : path:string -> state -> unit
(** Write-to-temp + atomic rename; a crash mid-save never corrupts an
    existing snapshot. *)

val load : path:string -> (state, string) result
(** Refuses files without the snapshot magic or with a different layout
    version instead of crashing on [Marshal]. *)

val restore :
  Mediator.t -> fresh_tenant:(string -> History.t) -> state ->
  (string * History.t) list
(** Replay into fresh per-tenant partitions (allocated by [fresh_tenant]),
    then pin adjustment factors and the clock. Returns the rebuilt tenant
    table, sorted by tenant name. *)
