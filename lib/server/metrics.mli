(** Server metrics: query counters and latency percentiles under one lock,
    exposed only as immutable snapshots (the {!Disco_mediator.Plancache}
    discipline), so continuous polling never observes torn counts.

    Invariants of every snapshot:
    [received = admitted + rejected_queue] and
    [admitted = completed + degraded + failed + rejected_deadline +
    in_flight]. *)

type t

val create : ?latency_capacity:int -> unit -> t
(** [latency_capacity] bounds retained latency samples (default 65536);
    beyond it a decimating reservoir keeps percentiles representative at
    constant memory. *)

val on_received : t -> unit
(** A query request was parsed. *)

val on_admitted : t -> unit
(** It entered the admission queue. *)

val on_rejected_queue : t -> unit
(** Backpressure: the bounded queue was full. *)

val on_rejected_deadline : t -> unit
(** Its deadline expired while it waited in the queue. *)

val on_completed : t -> latency_ms:float -> unit
val on_degraded : t -> latency_ms:float -> unit
val on_failed : t -> latency_ms:float -> unit

type snapshot = {
  uptime_s : float;
  received : int;
  admitted : int;
  rejected_queue : int;
  rejected_deadline : int;
  completed : int;
  degraded : int;
  failed : int;
  in_flight : int;
  samples : int;  (** latency samples the percentiles are computed from *)
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  max_ms : float;
}

val snapshot : t -> snapshot

val to_json : snapshot -> Json.t
