(* Bounded admission queue: the server's backpressure point.

   [try_push] never blocks — when the queue is at depth, the job is
   refused immediately and the client gets a structured rejection instead
   of unbounded latency (the queue saturates exactly when the executor —
   and behind it the PR 5 domain pool — cannot keep up). [pop] blocks
   until a job or until [close]; a closed queue drains before reporting
   exhaustion, so accepted work is never dropped. Counters follow the
   immutable-snapshot discipline. *)

type counters = { pushed : int; rejected : int; popped : int }

type 'a t = {
  depth : int;
  q : 'a Queue.t;
  lock : Mutex.t;
  nonempty : Condition.t;
  mutable closed : bool;
  mutable pushed : int;
  mutable rejected : int;
  mutable popped : int;
}

let create ~depth =
  { depth = max 1 depth;
    q = Queue.create ();
    lock = Mutex.create ();
    nonempty = Condition.create ();
    closed = false;
    pushed = 0;
    rejected = 0;
    popped = 0 }

let depth t = t.depth

let try_push t x =
  Mutex.protect t.lock (fun () ->
      if t.closed || Queue.length t.q >= t.depth then begin
        t.rejected <- t.rejected + 1;
        false
      end
      else begin
        Queue.push x t.q;
        t.pushed <- t.pushed + 1;
        Condition.signal t.nonempty;
        true
      end)

let pop t =
  Mutex.protect t.lock (fun () ->
      let rec wait () =
        if not (Queue.is_empty t.q) then begin
          let x = Queue.pop t.q in
          t.popped <- t.popped + 1;
          Some x
        end
        else if t.closed then None
        else begin
          Condition.wait t.nonempty t.lock;
          wait ()
        end
      in
      wait ())

let close t =
  Mutex.protect t.lock (fun () ->
      t.closed <- true;
      Condition.broadcast t.nonempty)

let length t = Mutex.protect t.lock (fun () -> Queue.length t.q)

let counters t =
  Mutex.protect t.lock (fun () ->
      { pushed = t.pushed; rejected = t.rejected; popped = t.popped })
