(* Server metrics: query counters and latency percentiles, one mutex, and
   an immutable snapshot type — the same discipline as [Plancache.counters]
   and [Health.report], so a metrics endpoint polled continuously can never
   observe a torn state (e.g. a query counted admitted but neither
   completed nor in flight after it finished).

   The accounting identity the serve-loop tests assert, exactly:

     received = admitted + rejected_queue
     admitted = completed + degraded + failed + rejected_deadline + in_flight

   Latencies are wall-clock ms from request receipt to response write,
   recorded for every admitted query that produced a response. The buffer
   is capped: beyond [latency_capacity] samples, a simple decimating
   reservoir keeps every other sample — percentiles stay representative
   while memory stays bounded on a long-running server. *)

type t = {
  lock : Mutex.t;
  started_at : float;  (* Unix time, for uptime *)
  mutable received : int;
  mutable admitted : int;
  mutable rejected_queue : int;
  mutable rejected_deadline : int;
  mutable completed : int;
  mutable degraded : int;
  mutable failed : int;
  mutable latencies : float array;  (* ms; grows doubling up to capacity *)
  mutable nlat : int;
  mutable decimation : int;  (* record every 2^k-th sample once saturated *)
  mutable skip : int;
  latency_capacity : int;
}

type snapshot = {
  uptime_s : float;
  received : int;
  admitted : int;
  rejected_queue : int;
  rejected_deadline : int;
  completed : int;
  degraded : int;
  failed : int;
  in_flight : int;
  samples : int;     (** latency samples the percentiles are computed from *)
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  max_ms : float;
}

let create ?(latency_capacity = 65_536) () =
  { lock = Mutex.create ();
    started_at = Unix.gettimeofday ();
    received = 0;
    admitted = 0;
    rejected_queue = 0;
    rejected_deadline = 0;
    completed = 0;
    degraded = 0;
    failed = 0;
    latencies = Array.make 1024 0.;
    nlat = 0;
    decimation = 0;
    skip = 0;
    latency_capacity = max 1024 latency_capacity }

let on_received t = Mutex.protect t.lock (fun () -> t.received <- t.received + 1)
let on_admitted t = Mutex.protect t.lock (fun () -> t.admitted <- t.admitted + 1)

let on_rejected_queue t =
  Mutex.protect t.lock (fun () -> t.rejected_queue <- t.rejected_queue + 1)

let on_rejected_deadline t =
  Mutex.protect t.lock (fun () -> t.rejected_deadline <- t.rejected_deadline + 1)

(* caller holds the lock *)
let record_latency t ms =
  if t.skip > 0 then t.skip <- t.skip - 1
  else begin
    (if t.nlat = Array.length t.latencies then
       if t.nlat < t.latency_capacity then begin
         let bigger = Array.make (2 * t.nlat) 0. in
         Array.blit t.latencies 0 bigger 0 t.nlat;
         t.latencies <- bigger
       end
       else begin
         (* saturated: drop every other retained sample and double the
            decimation stride for future ones *)
         let kept = Array.make t.latency_capacity 0. in
         let k = ref 0 in
         for i = 0 to t.nlat - 1 do
           if i mod 2 = 0 then begin
             kept.(!k) <- t.latencies.(i);
             incr k
           end
         done;
         t.latencies <- kept;
         t.nlat <- !k;
         t.decimation <- (2 * max 1 t.decimation)
       end);
    t.latencies.(t.nlat) <- ms;
    t.nlat <- t.nlat + 1;
    t.skip <- max 0 (t.decimation - 1)
  end

let on_completed t ~latency_ms =
  Mutex.protect t.lock (fun () ->
      t.completed <- t.completed + 1;
      record_latency t latency_ms)

let on_degraded t ~latency_ms =
  Mutex.protect t.lock (fun () ->
      t.degraded <- t.degraded + 1;
      record_latency t latency_ms)

let on_failed t ~latency_ms =
  Mutex.protect t.lock (fun () ->
      t.failed <- t.failed + 1;
      record_latency t latency_ms)

(* Nearest-rank percentile over a sorted copy of the samples. *)
let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.
  else
    let rank = int_of_float (Float.round (q *. float_of_int (n - 1))) in
    sorted.(max 0 (min (n - 1) rank))

let snapshot t =
  Mutex.protect t.lock (fun () ->
      let sorted = Array.sub t.latencies 0 t.nlat in
      Array.sort compare sorted;
      let n = Array.length sorted in
      { uptime_s = Unix.gettimeofday () -. t.started_at;
        received = t.received;
        admitted = t.admitted;
        rejected_queue = t.rejected_queue;
        rejected_deadline = t.rejected_deadline;
        completed = t.completed;
        degraded = t.degraded;
        failed = t.failed;
        in_flight =
          t.admitted - t.completed - t.degraded - t.failed - t.rejected_deadline;
        samples = n;
        p50_ms = percentile sorted 0.50;
        p95_ms = percentile sorted 0.95;
        p99_ms = percentile sorted 0.99;
        max_ms = (if n = 0 then 0. else sorted.(n - 1)) })

let to_json (s : snapshot) : Json.t =
  Json.Obj
    [ ("uptime_s", Json.Float s.uptime_s);
      ("received", Json.Int s.received);
      ("admitted", Json.Int s.admitted);
      ("rejected_queue", Json.Int s.rejected_queue);
      ("rejected_deadline", Json.Int s.rejected_deadline);
      ("completed", Json.Int s.completed);
      ("degraded", Json.Int s.degraded);
      ("failed", Json.Int s.failed);
      ("in_flight", Json.Int s.in_flight);
      ("latency",
       Json.Obj
         [ ("samples", Json.Int s.samples);
           ("p50_ms", Json.Float s.p50_ms);
           ("p95_ms", Json.Float s.p95_ms);
           ("p99_ms", Json.Float s.p99_ms);
           ("max_ms", Json.Float s.max_ms) ]) ]
