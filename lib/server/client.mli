(** Blocking client for the serve protocol — one connection, one request in
    flight. Used by [disco metrics], the closed-loop bench driver and the
    server tests; drive concurrency by opening several clients. *)

type t

val connect : Server.addr -> t
val connect_retry : ?attempts:int -> ?delay_s:float -> Server.addr -> t
(** Retries refused connections (default 50 × 100 ms) — for clients racing
    a server that is still binding its socket. *)

val close : t -> unit

val request : t -> Json.t -> Json.t
(** Send one request object, wait for the one-line response.
    @raise Failure on EOF or malformed response. *)

val query :
  ?id:Json.t -> ?tenant:string -> ?objective:[ `First | `Total ] ->
  ?deadline_ms:float -> t -> string -> Json.t

val metrics : t -> Json.t
val health : t -> Json.t
val ping : t -> Json.t
val snapshot : t -> Json.t
val shutdown : t -> Json.t
