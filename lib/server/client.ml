(* A blocking one-request-one-response client for the serve protocol,
   shared by the CLI ([disco metrics]), the closed-loop bench driver and
   the server tests. One [t] is one connection; it is not thread-safe —
   concurrent load comes from many clients, matching the closed-loop
   benchmark model. *)

type t = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let connect_unix path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }

let connect_tcp ~host ~port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  let inet =
    try Unix.inet_addr_of_string host
    with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
  in
  Unix.connect fd (Unix.ADDR_INET (inet, port));
  { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }

let connect = function
  | Server.Unix_socket path -> connect_unix path
  | Server.Tcp { host; port } -> connect_tcp ~host ~port

(* Retry briefly: tests and the bench start the server in the background
   and connect as soon as possible. *)
let connect_retry ?(attempts = 50) ?(delay_s = 0.1) addr =
  let rec go n =
    match connect addr with
    | c -> c
    | exception Unix.Unix_error _ when n > 1 ->
      Thread.delay delay_s;
      go (n - 1)
  in
  go (max 1 attempts)

let close t =
  (try Unix.shutdown t.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  try Unix.close t.fd with Unix.Unix_error _ -> ()

let request t (j : Json.t) : Json.t =
  output_string t.oc (Json.to_string j ^ "\n");
  flush t.oc;
  match input_line t.ic with
  | line ->
    (match Json.parse line with
     | Ok j -> j
     | Error e -> failwith ("client: bad response json: " ^ e))
  | exception End_of_file -> failwith "client: connection closed by server"

let query ?id ?tenant ?objective ?deadline_ms t sql : Json.t =
  let fields =
    List.concat
      [ [ ("op", Json.String "query"); ("sql", Json.String sql) ];
        (match id with Some i -> [ ("id", i) ] | None -> []);
        (match tenant with
         | Some te -> [ ("tenant", Json.String te) ]
         | None -> []);
        (match objective with
         | Some `First -> [ ("objective", Json.String "first") ]
         | Some `Total -> [ ("objective", Json.String "total") ]
         | None -> []);
        (match deadline_ms with
         | Some d -> [ ("deadline_ms", Json.Float d) ]
         | None -> []) ]
  in
  request t (Json.Obj fields)

let op t name = request t (Json.Obj [ ("op", Json.String name) ])
let metrics t = op t "metrics"
let health t = op t "health"
let ping t = op t "ping"
let snapshot t = op t "snapshot"
let shutdown t = op t "shutdown"
