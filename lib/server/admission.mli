(** Bounded admission queue — the server's backpressure point.

    {!try_push} never blocks: at depth, the job is refused immediately so
    the client sees a structured rejection instead of unbounded queueing
    delay. {!pop} blocks for work; after {!close} it drains the remaining
    jobs, then reports exhaustion with [None]. *)

type 'a t

val create : depth:int -> 'a t
(** Clamped to depth ≥ 1. *)

val depth : 'a t -> int

val try_push : 'a t -> 'a -> bool
(** [false] when the queue is full or closed (counted as a rejection). *)

val pop : 'a t -> 'a option
(** Blocks until a job is available; [None] once closed and drained. *)

val close : 'a t -> unit
(** Refuse new work and wake all poppers. Idempotent. *)

val length : 'a t -> int

(** Immutable counter snapshot; [pushed - popped] jobs are queued. *)
type counters = { pushed : int; rejected : int; popped : int }

val counters : 'a t -> counters
