(* A minimal JSON value type with a printer and a recursive-descent parser,
   for the server's line-delimited protocol. No external dependency: the
   container ships no JSON library, and the protocol needs only standard
   JSON — objects, arrays, strings (with escapes), numbers, booleans, null.

   Numbers: integers parse to [Int], everything else to [Float]. Floats
   print with "%.17g" so a value round-trips bit-identically through the
   wire — the serve-loop differential tests compare server rows against
   locally serialized rows with this very printer. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* --- printing ---------------------------------------------------------------- *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.17g" f)
    else Buffer.add_string buf "null"  (* JSON has no NaN/infinity *)
  | String s -> escape buf s
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        write buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape buf k;
        Buffer.add_char buf ':';
        write buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

(* --- parsing ----------------------------------------------------------------- *)

exception Parse_error of string

let parse_exn (s : string) : t =
  let n = String.length s in
  let pos = ref 0 in
  let error msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then advance ()
    else error (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else error (Printf.sprintf "expected %s" word)
  in
  let utf8_of_code buf code =
    (* BMP only; enough for the protocol's \uXXXX escapes *)
    if code < 0x80 then Buffer.add_char buf (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then error "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
          advance ();
          (if !pos >= n then error "unterminated escape"
           else
             match s.[!pos] with
             | '"' -> Buffer.add_char buf '"'; advance ()
             | '\\' -> Buffer.add_char buf '\\'; advance ()
             | '/' -> Buffer.add_char buf '/'; advance ()
             | 'n' -> Buffer.add_char buf '\n'; advance ()
             | 'r' -> Buffer.add_char buf '\r'; advance ()
             | 't' -> Buffer.add_char buf '\t'; advance ()
             | 'b' -> Buffer.add_char buf '\b'; advance ()
             | 'f' -> Buffer.add_char buf '\012'; advance ()
             | 'u' ->
               advance ();
               if !pos + 4 > n then error "truncated \\u escape";
               let hex = String.sub s !pos 4 in
               (match int_of_string_opt ("0x" ^ hex) with
                | Some code -> utf8_of_code buf code; pos := !pos + 4
                | None -> error "bad \\u escape")
             | c -> error (Printf.sprintf "bad escape \\%c" c));
          go ()
        | c -> Buffer.add_char buf c; advance (); go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    while
      !pos < n
      && (match s.[!pos] with
          | '0' .. '9' | '.' | 'e' | 'E' | '+' | '-' -> true
          | _ -> false)
    do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    match int_of_string_opt text with
    | Some i -> Int i
    | None ->
      (match float_of_string_opt text with
       | Some f -> Float f
       | None -> error (Printf.sprintf "bad number %S" text))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> error "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin advance (); Obj [] end
      else begin
        let rec fields acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); fields ((k, v) :: acc)
          | Some '}' -> advance (); List.rev ((k, v) :: acc)
          | _ -> error "expected , or } in object"
        in
        Obj (fields [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin advance (); List [] end
      else begin
        let rec elts acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); elts (v :: acc)
          | Some ']' -> advance (); List.rev (v :: acc)
          | _ -> error "expected , or ] in array"
        in
        List (elts [])
      end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> error (Printf.sprintf "unexpected character %C" c)
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then error "trailing garbage";
  v

let parse s =
  match parse_exn s with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

(* --- accessors --------------------------------------------------------------- *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let string_member key j =
  match member key j with Some (String s) -> Some s | _ -> None

let float_member key j =
  match member key j with
  | Some (Float f) -> Some f
  | Some (Int i) -> Some (float_of_int i)
  | _ -> None

let int_member key j = match member key j with Some (Int i) -> Some i | _ -> None
