(* Warm-restart snapshots.

   What makes a freshly started server "cold" is not the catalog or the
   rules — registration rebuilds those from the wrappers — but the learned
   state the paper's dynamic extensions (§4.3) accumulate from traffic:
   per-tenant history records, the per-source adjustment factors they
   produced, and the simulated clock the breaker cooldowns live on. A
   snapshot captures exactly that; [restore] replays every record through
   [History.observe] on a fresh mediator, re-deriving query-scope rules,
   adjustment factors, selectivity corrections and drift streaks, then
   pins the per-source adjustment factors to their snapshotted values
   (replay is per tenant, so cross-tenant interleaving of Adjust smoothing
   is not reproduced exactly — the pinned factors are).

   The format is a magic line + version, then a [Marshal]ed [state]. Plans
   and predicates are pure data, so marshalling is safe; the magic/version
   check refuses snapshots from other builds instead of crashing on a
   layout change. *)

open Disco_core
open Disco_mediator

let magic = "disco-snapshot"
let version = 1

type tenant_state = {
  tenant : string;
  records : History.record list;  (* oldest first, as History.records *)
}

type state = {
  saved_at : float;    (* Unix time of the save *)
  clock_ms : float;    (* the mediator's simulated clock *)
  generation : int;    (* registry generation at save, informational *)
  tenants : tenant_state list;
  adjusts : (string * float) list;  (* per-source adjustment factors != 1 *)
}

let capture med ~(tenants : (string * History.t) list) : state =
  let registry = Mediator.registry med in
  { saved_at = Unix.gettimeofday ();
    clock_ms = Mediator.now med;
    generation = Registry.generation registry;
    tenants =
      List.map
        (fun (tenant, h) -> { tenant; records = History.records h })
        (List.sort (fun (a, _) (b, _) -> String.compare a b) tenants);
    adjusts =
      List.filter_map
        (fun source ->
          let f = Registry.adjust registry ~source in
          if f <> 1. then Some (source, f) else None)
        (Registry.sources registry) }

let save ~path (s : state) =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  output_string oc magic;
  output_char oc '\n';
  output_binary_int oc version;
  Marshal.to_channel oc s [];
  close_out oc;
  Sys.rename tmp path  (* atomic replace: a crash never truncates the old one *)

let load ~path : (state, string) result =
  if not (Sys.file_exists path) then Error "no snapshot file"
  else
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        match input_line ic with
        | exception End_of_file -> Error "truncated snapshot"
        | line when line <> magic -> Error "not a disco snapshot"
        | _ ->
          let v = input_binary_int ic in
          if v <> version then
            Error (Printf.sprintf "snapshot version %d, expected %d" v version)
          else
            (match (Marshal.from_channel ic : state) with
             | s -> Ok s
             | exception _ -> Error "corrupt snapshot payload"))

(* Replay one tenant's records into a history partition, oldest first. *)
let replay_tenant (h : History.t) (ts : tenant_state) =
  List.iter
    (fun (r : History.record) ->
      History.observe ?estimated_count:r.History.estimated_count h
        ~source:r.History.source ~plan:r.History.plan ~measured:r.History.measured
        ~estimated_total:r.History.estimated_total)
    ts.records

let restore med ~(fresh_tenant : string -> History.t) (s : state) :
    (string * History.t) list =
  let tenants =
    List.map
      (fun ts ->
        let h = fresh_tenant ts.tenant in
        replay_tenant h ts;
        (ts.tenant, h))
      s.tenants
  in
  (* pin the registry-level factors to their snapshotted values: replay
     re-derived close approximations, this makes them exact *)
  let registry = Mediator.registry med in
  List.iter (fun (source, f) -> Registry.set_adjust registry ~source f) s.adjusts;
  Mediator.set_now med s.clock_ms;
  tenants
