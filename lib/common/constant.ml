(* Polymorphic constant values, the [Constant] object of the paper's
   cardinality interface (Fig 4). Used for attribute values, predicate
   constants, and Min/Max statistics. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string

let pp ppf = function
  | Null -> Fmt.string ppf "null"
  | Bool b -> Fmt.bool ppf b
  | Int i -> Fmt.int ppf i
  | Float f -> Fmt.float ppf f
  | String s -> Fmt.pf ppf "%S" s

let to_string c = Fmt.str "%a" pp c

let equal a b =
  match a, b with
  | Null, Null -> true
  | Bool a, Bool b -> a = b
  | Int a, Int b -> a = b
  | Float a, Float b -> a = b
  | Int a, Float b | Float b, Int a -> float_of_int a = b
  | String a, String b -> String.equal a b
  | _ -> false

(* Hash consistent with [equal]: numeric constants hash through their float
   value so that [Int 1] and [Float 1.] (equal under coercion) collide. *)
let hash = function
  | Null -> 17
  | Bool b -> if b then 19 else 23
  | Int i -> Hashtbl.hash (float_of_int i)
  | Float f -> Hashtbl.hash f
  | String s -> Hashtbl.hash s

(* Rank used to obtain a total order across constructors. *)
let rank = function
  | Null -> 0
  | Bool _ -> 1
  | Int _ | Float _ -> 2
  | String _ -> 3

let compare a b =
  match a, b with
  | Null, Null -> 0
  | Bool a, Bool b -> Bool.compare a b
  | Int a, Int b -> Int.compare a b
  | Float a, Float b -> Float.compare a b
  | Int a, Float b -> Float.compare (float_of_int a) b
  | Float a, Int b -> Float.compare a (float_of_int b)
  | String a, String b -> String.compare a b
  | _ -> Int.compare (rank a) (rank b)

let is_null = function Null -> true | _ -> false

(* Numeric view: booleans count as 0/1, strings are not numeric. *)
let to_float_opt = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | Bool true -> Some 1.
  | Bool false -> Some 0.
  | Null | String _ -> None

let of_float f = Float f
let of_int i = Int i
let of_string s = String s

(* Position of [v] within [min, max] as a fraction in [0, 1]; used for
   range-predicate selectivity under the uniform-distribution assumption.
   Strings interpolate on their first two characters, which is enough to
   discriminate alphabetic ranges such as "Adiba".."Valduriez". *)
let fraction ~min ~max v =
  let clamp x = if x < 0. then 0. else if x > 1. then 1. else x in
  let str_key s =
    let byte i = if i < String.length s then float_of_int (Char.code s.[i]) else 0. in
    (byte 0 *. 256.) +. byte 1
  in
  match to_float_opt min, to_float_opt max, to_float_opt v with
  | Some lo, Some hi, Some x ->
    if hi <= lo then Some 0.5 else Some (clamp ((x -. lo) /. (hi -. lo)))
  | _ ->
    (match min, max, v with
     | String lo, String hi, String x ->
       let lo = str_key lo and hi = str_key hi and x = str_key x in
       if hi <= lo then Some 0.5 else Some (clamp ((x -. lo) /. (hi -. lo)))
     | _ -> None)

(* Approximate byte width of a constant when serialized; used to charge
   communication costs. *)
let byte_size = function
  | Null -> 1
  | Bool _ -> 1
  | Int _ -> 8
  | Float _ -> 8
  | String s -> String.length s
