(** Polymorphic constant values.

    This is the [Constant] object of the paper's cardinality interface
    (Fig 4): attribute values, predicate constants, and the [Min]/[Max]
    statistics are all represented by this type. Integers and floats compare
    and test equal across constructors. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string

val pp : Format.formatter -> t -> unit
(** Render a constant; strings are quoted. *)

val to_string : t -> string

val equal : t -> t -> bool
(** Equality with numeric coercion: [equal (Int 2) (Float 2.) = true]. *)

val hash : t -> int
(** Hash consistent with {!equal}: numeric constants hash through their float
    value, so [hash (Int 2) = hash (Float 2.)]. *)

val compare : t -> t -> int
(** Total order. Numerics compare by value across constructors; values of
    different kinds order by kind rank (null < bool < numeric < string). *)

val is_null : t -> bool

val to_float_opt : t -> float option
(** Numeric view: integers and floats as themselves, booleans as 0/1, [None]
    for strings and null. *)

val of_float : float -> t
val of_int : int -> t
val of_string : string -> t

val fraction : min:t -> max:t -> t -> float option
(** [fraction ~min ~max v] is the position of [v] within [[min, max]] as a
    value in [[0, 1]], used for range-predicate selectivity under the uniform
    distribution assumption. Strings interpolate on their first two bytes.
    Returns [0.5] when [min >= max] (no information) and [None] when the
    bounds are not comparable numerically or lexically. *)

val byte_size : t -> int
(** Approximate serialized width in bytes, used to charge communication
    costs. *)
