(** Error values shared across the DISCO libraries. *)

exception Parse_error of { what : string; line : int; col : int; msg : string }
(** Raised by the cost-language and SQL parsers; [what] names the input
    (e.g. a wrapper's rule text), positions are 1-based. *)

exception Unknown_collection of string
exception Unknown_attribute of { collection : string; attribute : string }
exception Unknown_source of string

exception Eval_error of string
(** Raised during cost-formula evaluation (unbound names, non-numeric values,
    division by zero, missing statistics...). *)

exception Plan_error of string
(** Raised for malformed or unresolvable query plans. *)

exception Source_unavailable of { source : string; retry_at_ms : float }
(** Raised when a query needs a source whose circuit breaker is open and no
    alternative plan remains; [retry_at_ms] is the simulated time at which
    the breaker will admit a half-open probe. *)

val parse_error : what:string -> line:int -> col:int -> string -> 'a
(** Raise {!Parse_error}. *)

val to_string : exn -> string
(** Human-readable rendering of the exceptions above (and a fallback for any
    other exception). *)

val guard : (unit -> 'a) -> ('a, string) result
(** Run a function, turning exceptions into [Error (to_string exn)]. *)
