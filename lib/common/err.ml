(* Error values shared across the DISCO libraries. Each exception carries a
   human-readable message; library boundaries expose [result]-returning
   functions built on [guard]. *)

exception Parse_error of { what : string; line : int; col : int; msg : string }
exception Unknown_collection of string
exception Unknown_attribute of { collection : string; attribute : string }
exception Unknown_source of string
exception Eval_error of string
exception Plan_error of string
exception Source_unavailable of { source : string; retry_at_ms : float }

let parse_error ~what ~line ~col msg = raise (Parse_error { what; line; col; msg })

let to_string = function
  | Parse_error { what; line; col; msg } ->
    Fmt.str "parse error in %s at line %d, column %d: %s" what line col msg
  | Unknown_collection c -> Fmt.str "unknown collection %S" c
  | Unknown_attribute { collection; attribute } ->
    Fmt.str "unknown attribute %S of collection %S" attribute collection
  | Unknown_source s -> Fmt.str "unknown source %S" s
  | Eval_error msg -> Fmt.str "cost evaluation error: %s" msg
  | Plan_error msg -> Fmt.str "plan error: %s" msg
  | Source_unavailable { source; retry_at_ms } ->
    Fmt.str
      "source %S is unavailable (circuit open; retry at t≈%.0f ms simulated): \
       no plan remains"
      source retry_at_ms
  | exn -> Printexc.to_string exn

let guard f = try Ok (f ()) with exn -> Error (to_string exn)
